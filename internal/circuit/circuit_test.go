package circuit

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/semiring"
	"repro/internal/structure"
)

func key(w string, elems ...int) structure.WeightKey {
	return structure.MakeWeightKey(w, structure.Tuple(elems))
}

// buildTriangleLike builds, by hand, the circuit of Example 5 of the paper:
//
//	f = Σ_{x,y,z} [x≠y ∧ x≠z] · u(x) · v(y) · w(z)
//
// over a domain of size n, decomposed as a 3×n permanent (all three
// distinct) plus a 2×n permanent with the y,z-merged column entries.
func buildTriangleLike(n int) *Circuit {
	c := NewBuilder()
	var entries3 []PermEntry
	var entries2 []PermEntry
	for a := 0; a < n; a++ {
		u := c.Input(key("u", a))
		v := c.Input(key("v", a))
		w := c.Input(key("w", a))
		entries3 = append(entries3,
			PermEntry{Row: 0, Col: a, Gate: u},
			PermEntry{Row: 1, Col: a, Gate: v},
			PermEntry{Row: 2, Col: a, Gate: w},
		)
		vw := c.Mul(v, w)
		entries2 = append(entries2,
			PermEntry{Row: 0, Col: a, Gate: u},
			PermEntry{Row: 1, Col: a, Gate: vw},
		)
	}
	p3 := c.Perm(3, n, entries3)
	p2 := c.Perm(2, n, entries2)
	c.SetOutput(c.Add(p3, p2))
	return c
}

// referenceTriangleLike computes the same quantity by brute force.
func referenceTriangleLike(u, v, w []int64) int64 {
	n := len(u)
	var total int64
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			for z := 0; z < n; z++ {
				if x != y && x != z {
					total += u[x] * v[y] * w[z]
				}
			}
		}
	}
	return total
}

func valuationFromSlices(u, v, w []int64) Valuation[int64] {
	return func(k structure.WeightKey) (int64, bool) {
		t := structure.ParseTupleKey(k.Tuple)
		switch k.Weight {
		case "u":
			return u[t[0]], true
		case "v":
			return v[t[0]], true
		case "w":
			return w[t[0]], true
		}
		return 0, false
	}
}

func TestBuilderSimplifications(t *testing.T) {
	c := NewBuilder()
	if c.Add() != c.Zero() {
		t.Errorf("empty Add should be the zero gate")
	}
	if c.Mul() != c.One() {
		t.Errorf("empty Mul should be the one gate")
	}
	in := c.Input(key("u", 0))
	if c.Add(in, c.Zero()) != in {
		t.Errorf("Add with zero should collapse")
	}
	if c.Mul(in, c.One()) != in {
		t.Errorf("Mul with one should collapse")
	}
	if c.Mul(in, c.Zero()) != c.Zero() {
		t.Errorf("Mul with zero should be zero")
	}
	if c.Input(key("u", 0)) != in {
		t.Errorf("Input should be deduplicated")
	}
	if c.Const(big.NewInt(0)) != c.Zero() || c.Const(big.NewInt(1)) != c.One() {
		t.Errorf("small constants should be canonical")
	}
	if c.Perm(0, 5, nil) != c.One() {
		t.Errorf("0-row permanent should be the one gate")
	}
	if c.Perm(2, 1, nil) != c.Zero() {
		t.Errorf("permanent with fewer columns than rows should be zero")
	}
	if !c.HasInput(key("u", 0)) || c.HasInput(key("zzz", 9)) {
		t.Errorf("HasInput broken")
	}
	if c.InputGate(key("zzz", 9)) != -1 {
		t.Errorf("InputGate of unknown key should be -1")
	}
}

func TestEvaluateExample5(t *testing.T) {
	n := 6
	c := buildTriangleLike(n)
	r := rand.New(rand.NewSource(3))
	u := make([]int64, n)
	v := make([]int64, n)
	w := make([]int64, n)
	for i := 0; i < n; i++ {
		u[i], v[i], w[i] = int64(r.Intn(5)), int64(r.Intn(5)), int64(r.Intn(5))
	}
	got := Evaluate[int64](c, semiring.Nat, valuationFromSlices(u, v, w))
	want := referenceTriangleLike(u, v, w)
	if got != want {
		t.Fatalf("Evaluate = %d, want %d", got, want)
	}
	// The same circuit evaluated in the min-plus semiring computes the
	// minimum of u(x)+v(y)+w(z) over x≠y, x≠z.
	mpVal := func(k structure.WeightKey) (semiring.Ext, bool) {
		iv, ok := valuationFromSlices(u, v, w)(k)
		if !ok {
			return semiring.Infinite, false
		}
		return semiring.Fin(iv), true
	}
	gotMP := Evaluate[semiring.Ext](c, semiring.MinPlus, mpVal)
	wantMP := semiring.Infinite
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			for z := 0; z < n; z++ {
				if x != y && x != z {
					wantMP = semiring.MinPlus.Add(wantMP, semiring.Fin(u[x]+v[y]+w[z]))
				}
			}
		}
	}
	if !semiring.MinPlus.Equal(gotMP, wantMP) {
		t.Fatalf("min-plus Evaluate = %v, want %v", gotMP, wantMP)
	}
}

func TestStatistics(t *testing.T) {
	c := buildTriangleLike(5)
	st := c.Statistics()
	if st.MaxPermRows != 3 {
		t.Errorf("MaxPermRows = %d, want 3", st.MaxPermRows)
	}
	if st.PermGates != 2 {
		t.Errorf("PermGates = %d, want 2", st.PermGates)
	}
	if st.InputGates != 15 {
		t.Errorf("InputGates = %d, want 15", st.InputGates)
	}
	if st.Depth < 2 {
		t.Errorf("Depth = %d, want at least 2", st.Depth)
	}
	if st.Gates != c.NumGates() || st.Edges != c.NumEdges() {
		t.Errorf("Statistics inconsistent with NumGates/NumEdges")
	}
	if c.Size() != st.Gates+st.Edges {
		t.Errorf("Size inconsistent")
	}
	if c.String() == "" {
		t.Errorf("empty String rendering")
	}
}

func TestConstGateEvaluation(t *testing.T) {
	c := NewBuilder()
	// 5 + 3·x where x is an input.
	x := c.Input(key("x", 0))
	five := c.ConstInt(5)
	three := c.ConstInt(3)
	c.SetOutput(c.Add(five, c.Mul(three, x)))
	val := func(k structure.WeightKey) (int64, bool) { return 7, true }
	if got := Evaluate[int64](c, semiring.Nat, val); got != 26 {
		t.Errorf("5 + 3·7 = %d, want 26", got)
	}
	// In the boolean semiring constants ≥ 1 collapse to true.
	bval := func(k structure.WeightKey) (bool, bool) { return false, true }
	if got := Evaluate[bool](c, semiring.Bool, bval); got != true {
		t.Errorf("constant 5 should be true in the boolean semiring")
	}
	// Missing inputs default to zero.
	missing := func(k structure.WeightKey) (int64, bool) { return 0, false }
	if got := Evaluate[int64](c, semiring.Nat, missing); got != 5 {
		t.Errorf("with missing input: %d, want 5", got)
	}
}

// TestDynamicMatchesRecomputation drives random updates through the dynamic
// evaluator for semirings exercising all three maintenance strategies
// (generic, ring, finite) and cross-checks against full re-evaluation.
func TestDynamicMatchesRecomputation(t *testing.T) {
	n := 5
	c := buildTriangleLike(n)
	r := rand.New(rand.NewSource(17))

	runFor := func(name string, check func(step int, vals map[structure.WeightKey]int64)) {
		t.Run(name, func(t *testing.T) {
			vals := map[structure.WeightKey]int64{}
			for a := 0; a < n; a++ {
				for _, w := range []string{"u", "v", "w"} {
					vals[key(w, a)] = int64(r.Intn(4))
				}
			}
			check(0, vals)
		})
	}

	runFor("Nat-generic", func(_ int, vals map[structure.WeightKey]int64) {
		val := func(k structure.WeightKey) (int64, bool) { v, ok := vals[k]; return v, ok }
		d := NewDynamic[int64](c, semiring.Nat, val)
		for step := 0; step < 40; step++ {
			k := key([]string{"u", "v", "w"}[r.Intn(3)], r.Intn(n))
			vals[k] = int64(r.Intn(4))
			d.SetInput(k, vals[k])
			want := Evaluate[int64](c, semiring.Nat, val)
			if got := d.Value(); got != want {
				t.Fatalf("step %d: dynamic %d, recomputed %d", step, got, want)
			}
		}
	})

	runFor("Int-ring", func(_ int, vals map[structure.WeightKey]int64) {
		val := func(k structure.WeightKey) (int64, bool) { v, ok := vals[k]; return v, ok }
		d := NewDynamic[int64](c, semiring.Int, val)
		for step := 0; step < 40; step++ {
			k := key([]string{"u", "v", "w"}[r.Intn(3)], r.Intn(n))
			vals[k] = int64(r.Intn(7) - 3)
			d.SetInput(k, vals[k])
			want := Evaluate[int64](c, semiring.Int, val)
			if got := d.Value(); got != want {
				t.Fatalf("step %d: dynamic %d, recomputed %d", step, got, want)
			}
		}
	})

	runFor("Mod7-finite", func(_ int, vals map[structure.WeightKey]int64) {
		mod := semiring.NewModular(7)
		val := func(k structure.WeightKey) (int64, bool) { v, ok := vals[k]; return v, ok }
		d := NewDynamic[int64](c, mod, val)
		for step := 0; step < 40; step++ {
			k := key([]string{"u", "v", "w"}[r.Intn(3)], r.Intn(n))
			vals[k] = int64(r.Intn(7))
			d.SetInput(k, vals[k])
			want := Evaluate[int64](c, mod, val)
			if got := d.Value(); !mod.Equal(got, want) {
				t.Fatalf("step %d: dynamic %d, recomputed %d", step, got, want)
			}
		}
	})
}

func TestDynamicMinPlus(t *testing.T) {
	n := 4
	c := buildTriangleLike(n)
	r := rand.New(rand.NewSource(23))
	vals := map[structure.WeightKey]semiring.Ext{}
	for a := 0; a < n; a++ {
		for _, w := range []string{"u", "v", "w"} {
			vals[key(w, a)] = semiring.Fin(int64(r.Intn(10)))
		}
	}
	val := func(k structure.WeightKey) (semiring.Ext, bool) { v, ok := vals[k]; return v, ok }
	d := NewDynamic[semiring.Ext](c, semiring.MinPlus, val)
	for step := 0; step < 30; step++ {
		k := key([]string{"u", "v", "w"}[r.Intn(3)], r.Intn(n))
		if r.Intn(5) == 0 {
			vals[k] = semiring.Infinite
		} else {
			vals[k] = semiring.Fin(int64(r.Intn(10)))
		}
		d.SetInput(k, vals[k])
		want := Evaluate[semiring.Ext](c, semiring.MinPlus, val)
		if got := d.Value(); !semiring.MinPlus.Equal(got, want) {
			t.Fatalf("step %d: dynamic %v, recomputed %v", step, got, want)
		}
	}
}

func TestDynamicIgnoresUnknownInputs(t *testing.T) {
	c := buildTriangleLike(3)
	vals := map[structure.WeightKey]int64{}
	val := func(k structure.WeightKey) (int64, bool) { v, ok := vals[k]; return v, ok }
	d := NewDynamic[int64](c, semiring.Nat, val)
	before := d.Value()
	d.SetInput(key("unrelated", 0), 99)
	if d.Value() != before {
		t.Errorf("unknown input changed the circuit value")
	}
	// Setting a known input to its current value is a no-op.
	d.SetInput(key("u", 0), 0)
	if d.Value() != before {
		t.Errorf("no-op update changed the circuit value")
	}
}

func TestGateValueAndSharedSubcircuits(t *testing.T) {
	// A gate feeding two parents (fan-out 2) must propagate to both.
	c := NewBuilder()
	x := c.Input(key("x", 0))
	y := c.Input(key("y", 0))
	shared := c.Mul(x, y)
	left := c.Add(shared, x)
	right := c.Mul(shared, y)
	c.SetOutput(c.Add(left, right))
	vals := map[structure.WeightKey]int64{key("x", 0): 2, key("y", 0): 3}
	val := func(k structure.WeightKey) (int64, bool) { v, ok := vals[k]; return v, ok }
	d := NewDynamic[int64](c, semiring.Nat, val)
	// (2·3 + 2) + (2·3·3) = 8 + 18 = 26
	if d.Value() != 26 {
		t.Fatalf("initial value %d, want 26", d.Value())
	}
	if d.GateValue(shared) != 6 {
		t.Errorf("GateValue(shared) = %d, want 6", d.GateValue(shared))
	}
	vals[key("x", 0)] = 5
	d.SetInput(key("x", 0), 5)
	// (15+5) + (15·3) = 20 + 45 = 65
	if d.Value() != 65 {
		t.Fatalf("after update %d, want 65", d.Value())
	}
	if got := Evaluate[int64](c, semiring.Nat, val); got != d.Value() {
		t.Fatalf("dynamic and static evaluation disagree: %d vs %d", d.Value(), got)
	}
}
