package dbio

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/structure"
)

// TestRoundTripProperty is the randomized Write→Read property test: for
// every workload family and several seeds, serialising and re-reading a
// database preserves the domain, every relation, and every weight — and a
// second Write of the re-read copy is byte-identical (the format has one
// canonical rendering per database).
func TestRoundTripProperty(t *testing.T) {
	kinds := []string{"bounded-degree", "grid", "forest", "pref-attach", "road"}
	for _, kind := range kinds {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", kind, seed), func(t *testing.T) {
				db, err := LoadSource(Source{Kind: kind, N: 60, Seed: seed})
				if err != nil {
					t.Fatalf("LoadSource: %v", err)
				}
				var first bytes.Buffer
				if err := Write(&first, db.A, db.W); err != nil {
					t.Fatalf("Write: %v", err)
				}
				got, err := Read(bytes.NewReader(first.Bytes()))
				if err != nil {
					t.Fatalf("Read: %v", err)
				}
				if got.A.N != db.A.N {
					t.Fatalf("domain %d, want %d", got.A.N, db.A.N)
				}
				for _, rel := range db.A.Sig.Relations {
					want := db.A.Tuples(rel.Name)
					if have := got.A.Tuples(rel.Name); len(have) != len(want) {
						t.Fatalf("relation %s has %d tuples, want %d", rel.Name, len(have), len(want))
					}
					for _, tup := range want {
						if !got.A.HasTuple(rel.Name, tup...) {
							t.Fatalf("tuple %s%v lost", rel.Name, tup)
						}
					}
				}
				if got.W.Len() != db.W.Len() {
					t.Fatalf("weights %d, want %d", got.W.Len(), db.W.Len())
				}
				db.W.ForEach(func(k structure.WeightKey, v int64) {
					if have, ok := got.W.GetKey(k); !ok || have != v {
						t.Fatalf("weight %v = %d,%v want %d", k, have, ok, v)
					}
				})
				var second bytes.Buffer
				if err := Write(&second, got.A, got.W); err != nil {
					t.Fatalf("second Write: %v", err)
				}
				if !bytes.Equal(first.Bytes(), second.Bytes()) {
					t.Fatalf("Write∘Read∘Write is not the identity on the serialised form")
				}
			})
		}
	}
}

// TestReadMoreErrors extends the malformed-input matrix: broken
// declarations and out-of-domain or ill-typed weight lines.
func TestReadMoreErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"negative rel arity", "domain 3\nrel E -2\n"},
		{"non-numeric rel arity", "domain 3\nrel E two\n"},
		{"negative wsym arity", "domain 3\nwsym w -1\n"},
		{"wsym missing arity", "domain 3\nwsym w\n"},
		{"negative domain", "domain -4\n"},
		{"domain extra argument", "domain 4 5\n"},
		{"weight before domain", "wsym w 1\nw 0 5\n"},
		{"weight tuple out of domain", "domain 3\nwsym w 2\nw 0 7 5\n"},
		{"weight wrong arity", "domain 3\nwsym w 2\nw 0 5\n"},
		{"wsym after weights", "domain 3\nwsym w 1\nw 0 5\nwsym u 1\n"},
		{"duplicate relation declaration", "domain 3\nrel E 2\nrel E 2\nE 0 1\n"},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.input)); err == nil {
			t.Errorf("%s: Read unexpectedly succeeded", c.name)
		}
	}
}

func TestLoadSource(t *testing.T) {
	// Reader sources take precedence and parse the text format.
	text := "domain 2\nrel E 2\nwsym w 2\nE 0 1\nw 0 1 9\n"
	db, err := LoadSource(Source{Reader: strings.NewReader(text), Kind: "ignored"})
	if err != nil {
		t.Fatalf("LoadSource(Reader): %v", err)
	}
	if !db.A.HasTuple("E", 0, 1) {
		t.Errorf("reader-mounted database lost its tuple")
	}

	// File sources.
	path := filepath.Join(t.TempDir(), "db.txt")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err = LoadSource(Source{Path: path})
	if err != nil {
		t.Fatalf("LoadSource(Path): %v", err)
	}
	if v, ok := db.W.Get("w", structure.Tuple{0, 1}); !ok || v != 9 {
		t.Errorf("file-mounted database lost its weight")
	}

	// Generated sources honour the per-kind degree defaults.
	db, err = LoadSource(Source{Kind: "bounded-degree", N: 50, Seed: 2})
	if err != nil {
		t.Fatalf("LoadSource(generated): %v", err)
	}
	if db.A.N == 0 || db.W.Len() == 0 {
		t.Errorf("generated database is empty")
	}

	if _, err := LoadSource(Source{Kind: "no-such-kind", N: 10}); err == nil {
		t.Errorf("unknown workload kind should fail")
	}
	if _, err := LoadSource(Source{Path: filepath.Join(t.TempDir(), "missing.txt")}); err == nil {
		t.Errorf("missing file should fail")
	}
}
