// Package perm implements permanents of rectangular matrices over
// commutative semirings, together with dynamic maintenance structures.
//
// The permanent of a k×n matrix M is
//
//	perm(M) = Σ_f Π_{r} M[r, f(r)],
//
// where f ranges over injective functions from rows to columns (equation (1)
// of the paper).  The paper reduces the evaluation and maintenance of
// arbitrary weighted queries on sparse databases to the evaluation and
// maintenance of permanents with a bounded number of rows (Theorem 6), so
// this package is the algebraic engine behind Theorems 8, 22 and 24:
//
//   - Perm evaluates a k×n permanent with O(2^k·k·n) semiring operations
//     (linear in n for fixed k, as required by Section 4).
//   - Dynamic maintains a permanent under single-entry updates in
//     O(3^k·log n) semiring operations (the divide-and-conquer circuit of
//     Lemma 10/11 and Corollary 13).
//   - RingDynamic maintains a permanent over a ring in O(2^k) operations per
//     update (the inclusion–exclusion circuit of Lemma 15, Corollary 17).
//   - FiniteDynamic maintains a permanent over a finite semiring in time
//     independent of n per update (the column-type counting argument of
//     Lemma 18, Corollary 20).
package perm

import (
	"fmt"
	"math/big"

	"repro/internal/semiring"
)

// Matrix is a dense k×n matrix of semiring values, with a small fixed number
// of rows and an unbounded number of columns.
type Matrix[T any] struct {
	Rows, Cols int
	data       []T
}

// NewMatrix returns a rows×cols matrix filled with zero.
func NewMatrix[T any](s semiring.Semiring[T], rows, cols int) *Matrix[T] {
	if rows < 0 || cols < 0 {
		panic("perm: negative matrix dimension")
	}
	m := &Matrix[T]{Rows: rows, Cols: cols, data: make([]T, rows*cols)}
	z := s.Zero()
	for i := range m.data {
		m.data[i] = z
	}
	return m
}

// At returns M[r, c].
func (m *Matrix[T]) At(r, c int) T { return m.data[r*m.Cols+c] }

// Set assigns M[r, c] = v.
func (m *Matrix[T]) Set(r, c int, v T) { m.data[r*m.Cols+c] = v }

// Column returns the c-th column as a fresh slice.
func (m *Matrix[T]) Column(c int) []T {
	col := make([]T, m.Rows)
	for r := 0; r < m.Rows; r++ {
		col[r] = m.At(r, c)
	}
	return col
}

// Clone returns a deep copy of the matrix.
func (m *Matrix[T]) Clone() *Matrix[T] {
	return &Matrix[T]{Rows: m.Rows, Cols: m.Cols, data: append([]T(nil), m.data...)}
}

// maxRows bounds the supported number of rows.  The number of rows equals
// the number of query variables in a monomial after compilation, so small
// values suffice; the bound keeps the 2^k and 3^k blow-ups in check.
const maxRows = 12

func checkRows(rows int) {
	if rows > maxRows {
		panic(fmt.Sprintf("perm: %d rows exceeds the supported maximum of %d", rows, maxRows))
	}
}

// PermNaive computes the permanent by brute force over all injective
// functions, in O(n^k) time.  It is the test oracle for the other
// implementations.
func PermNaive[T any](s semiring.Semiring[T], m *Matrix[T]) T {
	checkRows(m.Rows)
	used := make([]bool, m.Cols)
	var rec func(row int) T
	rec = func(row int) T {
		if row == m.Rows {
			return s.One()
		}
		acc := s.Zero()
		for c := 0; c < m.Cols; c++ {
			if used[c] {
				continue
			}
			used[c] = true
			acc = s.Add(acc, s.Mul(m.At(row, c), rec(row+1)))
			used[c] = false
		}
		return acc
	}
	return rec(0)
}

// Perm computes the permanent of a k×n matrix with O(2^k·k·n) semiring
// operations by dynamic programming over columns: state[S] is the permanent
// of the submatrix with rows S and the columns processed so far, where every
// row of S must be matched.
func Perm[T any](s semiring.Semiring[T], m *Matrix[T]) T {
	checkRows(m.Rows)
	k := m.Rows
	if k == 0 {
		return s.One()
	}
	size := 1 << uint(k)
	state := make([]T, size)
	for i := range state {
		state[i] = s.Zero()
	}
	state[0] = s.One()
	next := make([]T, size)
	for c := 0; c < m.Cols; c++ {
		copy(next, state)
		for sub := 0; sub < size; sub++ {
			if semiring.IsZero(s, state[sub]) {
				continue
			}
			for r := 0; r < k; r++ {
				bit := 1 << uint(r)
				if sub&bit != 0 {
					continue
				}
				next[sub|bit] = s.Add(next[sub|bit], s.Mul(state[sub], m.At(r, c)))
			}
		}
		state, next = next, state
	}
	return state[size-1]
}

// PermColumns computes the permanent of a matrix given as a sequence of
// columns (each of length k), without materialising a Matrix.  It is used by
// the circuit evaluator for permanent gates.
func PermColumns[T any](s semiring.Semiring[T], k int, columns func(c int) []T, n int) T {
	checkRows(k)
	if k == 0 {
		return s.One()
	}
	size := 1 << uint(k)
	state := make([]T, size)
	for i := range state {
		state[i] = s.Zero()
	}
	state[0] = s.One()
	next := make([]T, size)
	for c := 0; c < n; c++ {
		col := columns(c)
		copy(next, state)
		for sub := 0; sub < size; sub++ {
			if semiring.IsZero(s, state[sub]) {
				continue
			}
			for r := 0; r < k; r++ {
				bit := 1 << uint(r)
				if sub&bit != 0 {
					continue
				}
				next[sub|bit] = s.Add(next[sub|bit], s.Mul(state[sub], col[r]))
			}
		}
		state, next = next, state
	}
	return state[size-1]
}

// Maintainer is a dynamic permanent: it reports the current permanent value
// and accepts single-entry updates.
//
// The three implementations trade generality for update time, exactly as in
// Section 4 of the paper: Dynamic works for every semiring with logarithmic
// updates, RingDynamic and FiniteDynamic achieve constant-time updates for
// rings and finite semirings respectively.
type Maintainer[T any] interface {
	// Value returns the permanent of the current matrix.
	Value() T
	// Update sets entry (row, col) to v and refreshes the value.
	Update(row, col int, v T)
	// At returns the current entry (row, col).
	At(row, col int) T
	// Dims returns the matrix dimensions.
	Dims() (rows, cols int)
}

// ---------------------------------------------------------------------------
// Generic semirings: segment tree over columns (Lemma 10/11, Corollary 13)
// ---------------------------------------------------------------------------

// Dynamic maintains the permanent of a k×n matrix over an arbitrary
// semiring.  Internally it is a segment tree over the columns; each node
// stores, for every subset S of rows, the "partial permanent" over the
// node's column range in which exactly the rows of S are matched.  Merging
// two children is the identity of Lemma 10 generalised to subsets
// (a subset-split convolution with 3^k terms), so updates cost
// O(3^k · log n) semiring operations and the value is read in O(1).
type Dynamic[T any] struct {
	s      semiring.Semiring[T]
	rows   int
	cols   int
	size   int // number of leaves (power of two ≥ cols, ≥ 1)
	full   int
	vecLen int
	// tree[i] is the subset vector of node i (1-based heap layout).
	tree [][]T
	// entries holds the current matrix for At.
	entries *Matrix[T]
}

// NewDynamic builds the dynamic permanent structure for the given matrix in
// O(3^k · n) semiring operations.
func NewDynamic[T any](s semiring.Semiring[T], m *Matrix[T]) *Dynamic[T] {
	checkRows(m.Rows)
	d := &Dynamic[T]{
		s:       s,
		rows:    m.Rows,
		cols:    m.Cols,
		full:    1<<uint(m.Rows) - 1,
		vecLen:  1 << uint(m.Rows),
		entries: m.Clone(),
	}
	d.size = 1
	for d.size < m.Cols {
		d.size *= 2
	}
	if d.size < 1 {
		d.size = 1
	}
	d.tree = make([][]T, 2*d.size)
	for i := range d.tree {
		d.tree[i] = nil
	}
	// Leaves.
	for c := 0; c < d.size; c++ {
		d.tree[d.size+c] = d.leafVector(c)
	}
	// Internal nodes.
	for i := d.size - 1; i >= 1; i-- {
		d.tree[i] = d.merge(d.tree[2*i], d.tree[2*i+1])
	}
	return d
}

// leafVector returns the subset vector of a single column: the empty subset
// has value 1, singletons {r} have value M[r,c], larger subsets are 0
// (a single column cannot match two rows).
func (d *Dynamic[T]) leafVector(c int) []T {
	vec := make([]T, d.vecLen)
	d.leafVectorInto(vec, c)
	return vec
}

// leafVectorInto writes the subset vector of column c into vec, reusing the
// slice so that updates allocate nothing.
func (d *Dynamic[T]) leafVectorInto(vec []T, c int) {
	for i := range vec {
		vec[i] = d.s.Zero()
	}
	vec[0] = d.s.One()
	if c < d.cols {
		for r := 0; r < d.rows; r++ {
			vec[1<<uint(r)] = d.entries.At(r, c)
		}
	}
}

// merge combines the subset vectors of two adjacent column ranges:
// out[S] = Σ_{T ⊆ S} left[T] · right[S\T].
func (d *Dynamic[T]) merge(left, right []T) []T {
	out := make([]T, d.vecLen)
	d.mergeInto(out, left, right)
	return out
}

// mergeInto writes the merge of left and right into out; out must not alias
// either operand (tree nodes never alias their children, so Update can reuse
// the existing node vectors).
func (d *Dynamic[T]) mergeInto(out, left, right []T) {
	for i := range out {
		out[i] = d.s.Zero()
	}
	for set := 0; set < d.vecLen; set++ {
		// Enumerate subsets of set.
		for sub := set; ; sub = (sub - 1) & set {
			out[set] = d.s.Add(out[set], d.s.Mul(left[sub], right[set^sub]))
			if sub == 0 {
				break
			}
		}
	}
}

// Value returns the permanent of the current matrix.
func (d *Dynamic[T]) Value() T {
	if d.rows == 0 {
		return d.s.One()
	}
	return d.tree[1][d.full]
}

// Update sets entry (row, col) to v and refreshes the structure in
// O(3^rows · log cols) semiring operations, rewriting the affected tree
// vectors in place so steady-state updates allocate nothing.
func (d *Dynamic[T]) Update(row, col int, v T) {
	if row < 0 || row >= d.rows || col < 0 || col >= d.cols {
		panic("perm: update out of range")
	}
	d.entries.Set(row, col, v)
	i := d.size + col
	d.leafVectorInto(d.tree[i], col)
	for i >= 2 {
		i /= 2
		d.mergeInto(d.tree[i], d.tree[2*i], d.tree[2*i+1])
	}
}

// At returns the current entry (row, col).
func (d *Dynamic[T]) At(row, col int) T { return d.entries.At(row, col) }

// Dims returns the matrix dimensions.
func (d *Dynamic[T]) Dims() (int, int) { return d.rows, d.cols }

// ---------------------------------------------------------------------------
// Rings: inclusion–exclusion over set partitions (Lemma 15, Corollary 17)
// ---------------------------------------------------------------------------

// RingDynamic maintains the permanent of a k×n matrix over a ring with
// O(2^k) ring operations per update.  It maintains, for every non-empty
// subset B of rows, the column sum S_B = Σ_c Π_{r∈B} M[r,c]; the permanent
// is recovered by Möbius inversion over set partitions:
//
//	perm(M) = Σ_{partitions π of the rows} Π_{B∈π} (−1)^{|B|−1}(|B|−1)!·S_B.
//
// For k = 2 this is the familiar Σa·Σb − Σab identity shown in the paper.
type RingDynamic[T any] struct {
	s       semiring.Ring[T]
	rows    int
	cols    int
	sums    []T // indexed by subset (non-empty)
	entries *Matrix[T]
	parts   [][]int // set partitions of [rows], each as a list of subset masks
	coeffs  []*big.Int
	value   T
	dirty   bool
}

// NewRingDynamic builds the structure in O(2^k·n) ring operations.
func NewRingDynamic[T any](s semiring.Ring[T], m *Matrix[T]) *RingDynamic[T] {
	checkRows(m.Rows)
	r := &RingDynamic[T]{
		s:       s,
		rows:    m.Rows,
		cols:    m.Cols,
		entries: m.Clone(),
	}
	size := 1 << uint(m.Rows)
	r.sums = make([]T, size)
	for i := range r.sums {
		r.sums[i] = s.Zero()
	}
	for c := 0; c < m.Cols; c++ {
		r.addColumn(c, false)
	}
	r.parts, r.coeffs = setPartitions(m.Rows)
	r.dirty = true
	return r
}

// addColumn adds (or subtracts) the contribution of column c to every
// subset sum.
func (r *RingDynamic[T]) addColumn(c int, subtract bool) {
	size := 1 << uint(r.rows)
	// prod[S] = Π_{r∈S} M[r,c]
	prod := make([]T, size)
	prod[0] = r.s.One()
	for set := 1; set < size; set++ {
		low := set & (-set)
		rowIdx := trailingZeros(low)
		prod[set] = r.s.Mul(prod[set^low], r.entries.At(rowIdx, c))
	}
	for set := 1; set < size; set++ {
		if subtract {
			r.sums[set] = r.s.Add(r.sums[set], r.s.Neg(prod[set]))
		} else {
			r.sums[set] = r.s.Add(r.sums[set], prod[set])
		}
	}
}

func trailingZeros(x int) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// Update sets entry (row, col) to v in O(2^rows) ring operations.
func (r *RingDynamic[T]) Update(row, col int, v T) {
	if row < 0 || row >= r.rows || col < 0 || col >= r.cols {
		panic("perm: update out of range")
	}
	r.addColumn(col, true)
	r.entries.Set(row, col, v)
	r.addColumn(col, false)
	r.dirty = true
}

// Value returns the permanent, recomputed from the subset sums when needed
// (O(Bell(k)·k) ring operations, independent of n).
func (r *RingDynamic[T]) Value() T {
	if !r.dirty {
		return r.value
	}
	if r.rows == 0 {
		r.value = r.s.One()
		r.dirty = false
		return r.value
	}
	total := r.s.Zero()
	for i, part := range r.parts {
		term := r.s.One()
		for _, block := range part {
			term = r.s.Mul(term, r.sums[block])
		}
		coeff := r.coeffs[i]
		scaled := semiring.ScalarMulBig(r.s, new(big.Int).Abs(coeff), term)
		if coeff.Sign() < 0 {
			scaled = r.s.Neg(scaled)
		}
		total = r.s.Add(total, scaled)
	}
	r.value = total
	r.dirty = false
	return total
}

// At returns the current entry (row, col).
func (r *RingDynamic[T]) At(row, col int) T { return r.entries.At(row, col) }

// Dims returns the matrix dimensions.
func (r *RingDynamic[T]) Dims() (int, int) { return r.rows, r.cols }

// setPartitions enumerates all set partitions of {0..k-1} together with the
// Möbius coefficient Π_B (−1)^{|B|−1}(|B|−1)! of each partition.
func setPartitions(k int) ([][]int, []*big.Int) {
	var parts [][]int
	var coeffs []*big.Int
	blocks := []int{}
	var rec func(elem int)
	rec = func(elem int) {
		if elem == k {
			part := append([]int(nil), blocks...)
			coeff := big.NewInt(1)
			for _, b := range part {
				size := popcount(b)
				f := factorial(size - 1)
				if (size-1)%2 == 1 {
					f.Neg(f)
				}
				coeff.Mul(coeff, f)
			}
			parts = append(parts, part)
			coeffs = append(coeffs, coeff)
			return
		}
		// Add elem to an existing block or start a new block.
		for i := range blocks {
			blocks[i] |= 1 << uint(elem)
			rec(elem + 1)
			blocks[i] &^= 1 << uint(elem)
		}
		blocks = append(blocks, 1<<uint(elem))
		rec(elem + 1)
		blocks = blocks[:len(blocks)-1]
	}
	if k == 0 {
		return [][]int{{}}, []*big.Int{big.NewInt(1)}
	}
	rec(0)
	return parts, coeffs
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func factorial(n int) *big.Int {
	f := big.NewInt(1)
	for i := 2; i <= n; i++ {
		f.Mul(f, big.NewInt(int64(i)))
	}
	return f
}

// ---------------------------------------------------------------------------
// Finite semirings: column-type counting (Lemma 18, Corollary 20)
// ---------------------------------------------------------------------------

// FiniteDynamic maintains the permanent of a k×n matrix over a finite
// semiring with update time independent of n.  The permanent only depends on
// how many columns realise each possible column type (a vector in S^k), so
// the structure maintains these counts and recomputes the permanent by
// dynamic programming over the distinct types present.
type FiniteDynamic[T any] struct {
	s       semiring.Semiring[T]
	rows    int
	cols    int
	entries *Matrix[T]
	// elements of the carrier and a lookup from formatted value to index.
	elems []T
	// typeCounts maps an encoded column type to the number of columns of
	// that type; typeVecs stores the decoded type vectors.
	typeCounts map[string]*big.Int
	typeVecs   map[string][]T
	value      T
	dirty      bool
}

// NewFiniteDynamic builds the structure in O(n·k) time plus a
// data-independent DP.
func NewFiniteDynamic[T any](s semiring.Finite[T], m *Matrix[T]) *FiniteDynamic[T] {
	checkRows(m.Rows)
	f := &FiniteDynamic[T]{
		s:          s,
		rows:       m.Rows,
		cols:       m.Cols,
		entries:    m.Clone(),
		elems:      s.Elements(),
		typeCounts: make(map[string]*big.Int),
		typeVecs:   make(map[string][]T),
	}
	for c := 0; c < m.Cols; c++ {
		f.addColumn(c, 1)
	}
	f.dirty = true
	return f
}

func (f *FiniteDynamic[T]) typeKey(col []T) string {
	key := ""
	for _, v := range col {
		key += fmt.Sprintf("%d,", f.elemIndex(v))
	}
	return key
}

func (f *FiniteDynamic[T]) elemIndex(v T) int {
	for i, e := range f.elems {
		if f.s.Equal(e, v) {
			return i
		}
	}
	panic("perm: value outside the finite semiring carrier")
}

func (f *FiniteDynamic[T]) addColumn(c int, delta int64) {
	col := f.entries.Column(c)
	key := f.typeKey(col)
	cnt, ok := f.typeCounts[key]
	if !ok {
		cnt = new(big.Int)
		f.typeCounts[key] = cnt
		f.typeVecs[key] = col
	}
	cnt.Add(cnt, big.NewInt(delta))
	if cnt.Sign() == 0 {
		delete(f.typeCounts, key)
		delete(f.typeVecs, key)
	}
}

// Update sets entry (row, col) to v; the cost is independent of the number
// of columns (it depends only on |S|^k and 2^k).
func (f *FiniteDynamic[T]) Update(row, col int, v T) {
	if row < 0 || row >= f.rows || col < 0 || col >= f.cols {
		panic("perm: update out of range")
	}
	f.addColumn(col, -1)
	f.entries.Set(row, col, v)
	f.addColumn(col, 1)
	f.dirty = true
}

// Value returns the permanent, recomputed from the type counts when dirty.
func (f *FiniteDynamic[T]) Value() T {
	if !f.dirty {
		return f.value
	}
	f.value = f.recompute()
	f.dirty = false
	return f.value
}

func (f *FiniteDynamic[T]) recompute() T {
	if f.rows == 0 {
		return f.s.One()
	}
	// DP over the distinct column types: state[S] = sum over assignments of
	// the rows in S to distinct columns among the types processed so far.
	size := 1 << uint(f.rows)
	state := make([]T, size)
	for i := range state {
		state[i] = f.s.Zero()
	}
	state[0] = f.s.One()
	for key, count := range f.typeCounts {
		colType := f.typeVecs[key]
		next := make([]T, size)
		copy(next, state)
		// For each subset R of rows assigned to columns of this type, the
		// rows pick distinct columns: count·(count−1)···(count−|R|+1) ways,
		// each contributing Π_{r∈R} colType[r].
		for set := 0; set < size; set++ {
			if semiring.IsZero(f.s, state[set]) {
				continue
			}
			free := (size - 1) &^ set
			for sub := free; sub != 0; sub = (sub - 1) & free {
				j := popcount(sub)
				ways := fallingFactorial(count, j)
				if ways.Sign() == 0 {
					continue
				}
				prod := f.s.One()
				for r := 0; r < f.rows; r++ {
					if sub&(1<<uint(r)) != 0 {
						prod = f.s.Mul(prod, colType[r])
					}
				}
				contrib := semiring.ScalarMulBig(f.s, ways, f.s.Mul(state[set], prod))
				next[set|sub] = f.s.Add(next[set|sub], contrib)
			}
		}
		state = next
	}
	return state[size-1]
}

func fallingFactorial(n *big.Int, k int) *big.Int {
	result := big.NewInt(1)
	cur := new(big.Int).Set(n)
	for i := 0; i < k; i++ {
		if cur.Sign() <= 0 {
			return new(big.Int)
		}
		result.Mul(result, cur)
		cur = new(big.Int).Sub(cur, big.NewInt(1))
	}
	return result
}

// At returns the current entry (row, col).
func (f *FiniteDynamic[T]) At(row, col int) T { return f.entries.At(row, col) }

// Dims returns the matrix dimensions.
func (f *FiniteDynamic[T]) Dims() (int, int) { return f.rows, f.cols }
