// Package bench implements the experiment harness behind EXPERIMENTS.md and
// cmd/aggbench: one experiment per complexity claim of the paper, each
// producing a printable table (see DESIGN.md §4 for the experiment index).
package bench

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/baseline"
	"repro/internal/circuit"
	"repro/internal/compile"
	"repro/internal/dynamicq"
	"repro/internal/enumerate"
	"repro/internal/expr"
	"repro/internal/graph"
	"repro/internal/logic"
	"repro/internal/nested"
	"repro/internal/perm"
	"repro/internal/provenance"
	"repro/internal/semiring"
	"repro/internal/structure"
	"repro/internal/workload"
)

// Table is one experiment's output.
type Table struct {
	ID     string
	Title  string
	Claim  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured Markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "*Claim:* %s\n\n", t.Claim)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	b.WriteString("\n")
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "*Note:* %s\n\n", n)
	}
	return b.String()
}

func dur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// TriangleQuery is the paper's running example: the weighted count of
// directed triangles, Σ_{x,y,z}[E(x,y)∧E(y,z)∧E(z,x)]·w(x,y)·w(y,z)·w(z,x).
func TriangleQuery() expr.Expr {
	return expr.Agg([]string{"x", "y", "z"}, expr.Times(
		expr.Guard(logic.Conj(logic.R("E", "x", "y"), logic.R("E", "y", "z"), logic.R("E", "z", "x"))),
		expr.W("w", "x", "y"), expr.W("w", "y", "z"), expr.W("w", "z", "x"),
	))
}

// PageRankQuery is Example 9's PageRank-round query
// f(x) = base + Σ_y [E(y,x)]·w(y)·invdeg(y), with the damping factor folded
// into invdeg.
func PageRankQuery() expr.Expr {
	return expr.Plus(
		expr.W("base"),
		expr.Agg([]string{"y"}, expr.Times(expr.Guard(logic.R("E", "y", "x")), expr.W("w", "y"), expr.W("invdeg", "y"))),
	)
}

// PathQuery is the weighted count of directed 2-paths with distinct
// endpoints.
func PathQuery() expr.Expr {
	return expr.Agg([]string{"x", "y", "z"}, expr.Times(
		expr.Guard(logic.Conj(logic.R("E", "x", "y"), logic.R("E", "y", "z"), logic.Neg(logic.Equal("x", "z")))),
		expr.W("u", "x"), expr.W("u", "z"),
	))
}

// Sizes returns the default problem sizes, reduced in quick mode.
func Sizes(quick bool) []int {
	if quick {
		return []int{500, 1000, 2000}
	}
	return []int{2000, 4000, 8000, 16000, 32000}
}

// E1CircuitCompilation measures Theorem 6: linear-time compilation, bounded
// structural parameters.
func E1CircuitCompilation(sizes []int) *Table {
	t := &Table{
		ID:     "E1",
		Title:  "Circuit compilation (Theorem 6)",
		Claim:  "the circuit is computed in time linear in |A| and has bounded depth, fan-out and permanent rows",
		Header: []string{"workload", "n", "tuples", "compile", "gates", "size/tuple", "depth", "maxPermRows", "colors"},
	}
	for _, n := range sizes {
		for _, wl := range []struct {
			name string
			db   *workload.Database
		}{
			{"bounded-degree", workload.BoundedDegree(n, 3, 42)},
			{"grid", workload.Grid(intSqrt(n), intSqrt(n), 42)},
		} {
			var res *compile.Result
			elapsed := timeIt(func() {
				var err error
				res, err = compile.Compile(wl.db.A, TriangleQuery(), compile.Options{})
				if err != nil {
					panic(err)
				}
			})
			st := res.Circuit.Statistics()
			t.Rows = append(t.Rows, []string{
				wl.name, fmt.Sprint(wl.db.A.N), fmt.Sprint(wl.db.A.TupleCount()), dur(elapsed),
				fmt.Sprint(st.Gates), fmt.Sprintf("%.1f", float64(res.Circuit.Size())/float64(wl.db.A.TupleCount())),
				fmt.Sprint(st.Depth), fmt.Sprint(st.MaxPermRows), fmt.Sprint(res.Stats.Colors),
			})
		}
	}
	t.Notes = append(t.Notes, "size/tuple should stay roughly constant as n grows (linear circuit size); depth and maxPermRows must not grow with n")
	return t
}

func intSqrt(n int) int {
	s := 1
	for s*s < n {
		s++
	}
	return s
}

// E2WeightedTriangles compares the compiled evaluator against the naive
// nested-loop evaluator and the hand-written edge-iteration baseline.
func E2WeightedTriangles(sizes []int, naiveCap int) *Table {
	t := &Table{
		ID:     "E2",
		Title:  "Weighted triangle aggregation (result A, Example 4)",
		Claim:  "linear-time evaluation in any semiring; the naive evaluator is cubic and the edge-iterate baseline is the classical O(m·Δ) algorithm",
		Header: []string{"n", "tuples", "compile+eval(N)", "eval(min-plus)", "edge-iterate", "naive", "value"},
	}
	for _, n := range sizes {
		db := workload.BoundedDegree(n, 3, 7)
		w := db.Weights()
		var res *compile.Result
		var value int64
		compiled := timeIt(func() {
			var err error
			res, err = compile.Compile(db.A, TriangleQuery(), compile.Options{})
			if err != nil {
				panic(err)
			}
			value = compile.Evaluate[int64](res, semiring.Nat, w)
		})
		mpw := db.MinPlusWeights()
		mp := timeIt(func() {
			compile.Evaluate[semiring.Ext](res, semiring.MinPlus, mpw)
		})
		edge := timeIt(func() {
			got := baseline.TriangleCountEdgeIterate[int64](semiring.Nat, db.A, w)
			if got != value {
				panic(fmt.Sprintf("baseline mismatch: %d vs %d", got, value))
			}
		})
		naive := "skipped"
		if n <= naiveCap {
			naive = dur(timeIt(func() {
				got := baseline.EvalExpression[int64](semiring.Nat, db.A, w, TriangleQuery())
				if got != value {
					panic(fmt.Sprintf("naive mismatch: %d vs %d", got, value))
				}
			}))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(db.A.TupleCount()), dur(compiled), dur(mp), dur(edge), naive, fmt.Sprint(value),
		})
	}
	t.Notes = append(t.Notes, "the same compiled circuit is re-evaluated in the min-plus semiring (minimum-cost triangle) without recompilation")
	return t
}

// E3Permanent measures the permanent engines: linear build, log vs constant
// updates (Lemmas 11, 15, 18 / Proposition 14).
func E3Permanent(columns []int) *Table {
	t := &Table{
		ID:     "E3",
		Title:  "Permanent maintenance (Section 4)",
		Claim:  "k×n permanents are computed in O(n); updates cost O(log n) over arbitrary semirings and O(1) over rings and finite semirings",
		Header: []string{"k", "n", "static eval", "build(generic)", "update(generic)", "update(ring)", "update(finite)"},
	}
	const k = 3
	const updates = 2000
	for _, n := range columns {
		mNat := perm.NewMatrix[int64](semiring.Nat, k, n)
		mInt := perm.NewMatrix[int64](semiring.Int, k, n)
		mod := semiring.NewModular(7)
		mMod := perm.NewMatrix[int64](mod, k, n)
		for r := 0; r < k; r++ {
			for c := 0; c < n; c++ {
				v := int64((r*31+c*17)%5 + 1)
				mNat.Set(r, c, v)
				mInt.Set(r, c, v)
				mMod.Set(r, c, v%7)
			}
		}
		static := timeIt(func() { perm.Perm[int64](semiring.Nat, mNat) })
		var dyn *perm.Dynamic[int64]
		build := timeIt(func() { dyn = perm.NewDynamic[int64](semiring.Nat, mNat) })
		ring := perm.NewRingDynamic[int64](semiring.Int, mInt)
		fin := perm.NewFiniteDynamic[int64](mod, mMod)
		upGeneric := timeIt(func() {
			for i := 0; i < updates; i++ {
				dyn.Update(i%k, (i*37)%n, int64(i%6))
				_ = dyn.Value()
			}
		}) / updates
		upRing := timeIt(func() {
			for i := 0; i < updates; i++ {
				ring.Update(i%k, (i*37)%n, int64(i%6))
				_ = ring.Value()
			}
		}) / updates
		upFinite := timeIt(func() {
			for i := 0; i < updates; i++ {
				fin.Update(i%k, (i*37)%n, int64(i%7))
				_ = fin.Value()
			}
		}) / updates
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k), fmt.Sprint(n), dur(static), dur(build), dur(upGeneric), dur(upRing), dur(upFinite),
		})
	}
	t.Notes = append(t.Notes, "generic updates should grow logarithmically with n; ring and finite-semiring updates should stay flat (Proposition 14 shows the log is unavoidable in general)")
	return t
}

// E4DynamicUpdates measures Theorem 8 end to end: weight updates on a
// compiled query.
func E4DynamicUpdates(sizes []int) *Table {
	t := &Table{
		ID:     "E4",
		Title:  "Dynamic weighted query maintenance (Theorem 8)",
		Claim:  "after linear preprocessing, weight updates take O(log n) in general semirings and O(1) in rings",
		Header: []string{"n", "preprocess(N)", "update(N generic)", "preprocess(Z ring)", "update(Z ring)"},
	}
	const updates = 500
	q := TriangleQuery()
	for _, n := range sizes {
		db := workload.BoundedDegree(n, 3, 11)
		w := db.Weights()
		edges := db.A.Tuples("E")

		var natQ *dynamicq.Query[int64]
		preNat := timeIt(func() {
			var err error
			natQ, err = dynamicq.CompileQuery[int64](semiring.Nat, db.A, w, q, compile.Options{})
			if err != nil {
				panic(err)
			}
		})
		upNat := timeIt(func() {
			for i := 0; i < updates; i++ {
				tpl := edges[(i*13)%len(edges)]
				if err := natQ.SetWeight("w", tpl, int64(i%5+1)); err != nil {
					panic(err)
				}
				if _, err := natQ.ValueClosed(); err != nil {
					panic(err)
				}
			}
		}) / updates

		var intQ *dynamicq.Query[int64]
		preInt := timeIt(func() {
			var err error
			intQ, err = dynamicq.CompileQuery[int64](semiring.Int, db.A, w, q, compile.Options{})
			if err != nil {
				panic(err)
			}
		})
		upInt := timeIt(func() {
			for i := 0; i < updates; i++ {
				tpl := edges[(i*13)%len(edges)]
				if err := intQ.SetWeight("w", tpl, int64(i%5+1)); err != nil {
					panic(err)
				}
				if _, err := intQ.ValueClosed(); err != nil {
					panic(err)
				}
			}
		}) / updates
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), dur(preNat), dur(upNat), dur(preInt), dur(upInt)})
	}
	return t
}

// E5Enumeration measures Theorem 24: linear preprocessing and constant
// enumeration delay.
func E5Enumeration(sizes []int) *Table {
	t := &Table{
		ID:     "E5",
		Title:  "Constant-delay enumeration of FO answers (Theorem 24)",
		Claim:  "preprocessing is linear; the delay between consecutive answers does not grow with n",
		Header: []string{"n", "answers", "preprocess", "first 1000: avg delay", "max delay", "materialise(naive)"},
	}
	phi := logic.Conj(logic.R("E", "x", "y"), logic.R("E", "y", "z"), logic.Neg(logic.Equal("x", "z")))
	vars := []string{"x", "y", "z"}
	for _, n := range sizes {
		db := workload.BoundedDegree(n, 3, 19)
		var ans *enumerate.Answers
		pre := timeIt(func() {
			var err error
			ans, err = enumerate.EnumerateAnswers(db.A, phi, vars, compile.Options{})
			if err != nil {
				panic(err)
			}
		})
		cur := ans.Cursor()
		count := 0
		var maxDelay, totalDelay time.Duration
		for count < 1000 {
			start := time.Now()
			_, ok := cur.Next()
			d := time.Since(start)
			if !ok {
				break
			}
			count++
			totalDelay += d
			if d > maxDelay {
				maxDelay = d
			}
		}
		avg := time.Duration(0)
		if count > 0 {
			avg = totalDelay / time.Duration(count)
		}
		naive := "skipped"
		if n <= 500 {
			naive = dur(timeIt(func() { baseline.MaterializeAnswers(phi, db.A, vars) }))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(ans.Count()), dur(pre), dur(avg), dur(maxDelay), naive,
		})
	}
	return t
}

// E6PageRank measures Example 9: one PageRank round as a weighted query with
// point queries and constant-time weight updates (float ring).
func E6PageRank(sizes []int) *Table {
	t := &Table{
		ID:     "E6",
		Title:  "PageRank round as a weighted query (Example 9)",
		Claim:  "linear preprocessing; querying the new rank of a page and updating a previous-round weight both take constant time (the rationals form a ring)",
		Header: []string{"n", "preprocess", "query all n ranks", "per-query", "per-update"},
	}
	for _, n := range sizes {
		db := workload.PreferentialAttachment(n, 2, 23)
		a := db.A
		// Weights: previous round w(v) = 1/n, invdeg(v) = d/outdeg(v).
		sig := structure.MustSignature(
			a.Sig.Relations,
			[]structure.WeightSymbol{{Name: "w", Arity: 1}, {Name: "invdeg", Arity: 1}, {Name: "base", Arity: 0}},
		)
		b := structure.NewStructure(sig, a.N)
		for _, tup := range a.Tuples("E") {
			b.MustAddTuple("E", tup...)
		}
		outdeg := make([]float64, a.N)
		for _, tup := range a.Tuples("E") {
			outdeg[tup[0]]++
		}
		const damping = 0.85
		wts := structure.NewWeights[float64]()
		for v := 0; v < a.N; v++ {
			wts.Set("w", structure.Tuple{v}, 1/float64(a.N))
			if outdeg[v] > 0 {
				wts.Set("invdeg", structure.Tuple{v}, damping/outdeg[v])
			}
		}
		wts.Set("base", structure.Tuple{}, (1-damping)/float64(a.N))
		f := expr.Plus(
			expr.W("base"),
			expr.Agg([]string{"y"}, expr.Times(expr.Guard(logic.R("E", "y", "x")), expr.W("w", "y"), expr.W("invdeg", "y"))),
		)
		var q *dynamicq.Query[float64]
		pre := timeIt(func() {
			var err error
			q, err = dynamicq.CompileQuery[float64](semiring.Float, b, wts, f, compile.Options{})
			if err != nil {
				panic(err)
			}
		})
		queryAll := timeIt(func() {
			for x := 0; x < a.N; x++ {
				if _, err := q.Value(x); err != nil {
					panic(err)
				}
			}
		})
		const updates = 500
		upd := timeIt(func() {
			for i := 0; i < updates; i++ {
				if err := q.SetWeight("w", structure.Tuple{i % a.N}, float64(i%7)/float64(a.N)); err != nil {
					panic(err)
				}
			}
		}) / updates
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), dur(pre), dur(queryAll), dur(queryAll / time.Duration(a.N)), dur(upd),
		})
	}
	return t
}

// E7NestedQuery measures Theorem 26 on the introduction's "maximum average
// neighbour weight" query.
func E7NestedQuery(sizes []int) *Table {
	t := &Table{
		ID:     "E7",
		Title:  "Nested weighted query evaluation (Theorem 26)",
		Claim:  "nested queries mixing ℕ, comparison/ratio connectives and a max aggregation evaluate in near-linear time",
		Header: []string{"n", "nested evaluator", "hand-written baseline", "agree"},
	}
	for _, n := range sizes {
		db := workload.BoundedDegree(n, 3, 29)
		a := db.A
		// Re-home onto a signature with a unary V guard.
		sig := structure.MustSignature(
			[]structure.RelSymbol{{Name: "E", Arity: 2}, {Name: "V", Arity: 1}},
			nil,
		)
		b := structure.NewStructure(sig, a.N)
		for _, tup := range a.Tuples("E") {
			b.MustAddTuple("E", tup...)
		}
		for v := 0; v < a.N; v++ {
			b.MustAddTuple("V", v)
		}
		ndb := nested.NewDatabase(b)
		if err := ndb.DeclareSRelation("weight", nested.NatSemiring, 1); err != nil {
			panic(err)
		}
		for v := 0; v < a.N; v++ {
			if err := ndb.SetValue("weight", structure.Tuple{v}, db.VertexWeight[v]); err != nil {
				panic(err)
			}
		}
		sumW := nested.Sum([]string{"y"}, nested.Times(nested.Bracket(nested.NatSemiring, nested.B("E", "x", "y")), nested.S(nested.NatSemiring, "weight", "y")))
		degree := nested.Sum([]string{"y"}, nested.Bracket(nested.NatSemiring, nested.B("E", "x", "y")))
		avg := nested.Guard("V", []string{"x"}, nested.RatioNat, sumW, degree)
		query := nested.Sum([]string{"x"}, nested.Guard("V", []string{"x"}, nested.IntoMaxPlus, avg))

		var got semiring.Ext
		nestedTime := timeIt(func() {
			ev := nested.NewEvaluator(ndb, compile.Options{})
			v, err := ev.EvalClosed(query)
			if err != nil {
				panic(err)
			}
			got = v.(semiring.Ext)
		})
		var want int64
		base := timeIt(func() {
			want = baseline.AverageNeighborWeightMax(b, db.VertexWeight)
		})
		agree := !got.Inf && got.V == want
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), dur(nestedTime), dur(base), fmt.Sprint(agree)})
	}
	t.Notes = append(t.Notes, "the nested evaluator pays an O(log n)-per-guard-tuple factor for generality; the hand-written baseline knows the query shape")
	return t
}

// E8LocalSearch measures Example 25: an independent-set local search driven
// by the dynamic enumerator, with constant work per improvement round.
func E8LocalSearch(sizes []int) *Table {
	t := &Table{
		ID:     "E8",
		Title:  "Local search via dynamic enumeration (Example 25)",
		Claim:  "each improvement step (find a free vertex, add it, update the predicates) takes constant time, so a maximal independent set is built in linear total time",
		Header: []string{"n", "preprocess", "rounds", "total search", "per round", "IS size"},
	}
	phi := logic.Conj(logic.Neg(logic.R("S", "x")), logic.Neg(logic.R("Blocked", "x")))
	for _, n := range sizes {
		db := workload.Grid(intSqrt(n), intSqrt(n), 31)
		a := db.A
		sig := structure.MustSignature(
			[]structure.RelSymbol{{Name: "E", Arity: 2}, {Name: "S", Arity: 1}, {Name: "Blocked", Arity: 1}},
			nil,
		)
		b := structure.NewStructure(sig, a.N)
		for _, tup := range a.Tuples("E") {
			b.MustAddTuple("E", tup...)
		}
		neighbors := make([][]int, a.N)
		for _, tup := range a.Tuples("E") {
			neighbors[tup[0]] = append(neighbors[tup[0]], tup[1])
			neighbors[tup[1]] = append(neighbors[tup[1]], tup[0])
		}
		var ans *enumerate.Answers
		pre := timeIt(func() {
			var err error
			ans, err = enumerate.EnumerateAnswers(b, phi, []string{"x"}, compile.Options{DynamicRelations: []string{"S", "Blocked"}})
			if err != nil {
				panic(err)
			}
		})
		rounds := 0
		isSize := 0
		search := timeIt(func() {
			for {
				cur := ans.Cursor()
				tpl, ok := cur.Next()
				if !ok {
					break
				}
				v := tpl[0]
				rounds++
				isSize++
				if err := ans.SetTuple("S", structure.Tuple{v}, true); err != nil {
					panic(err)
				}
				if err := ans.SetTuple("Blocked", structure.Tuple{v}, true); err != nil {
					panic(err)
				}
				for _, u := range neighbors[v] {
					if err := ans.SetTuple("Blocked", structure.Tuple{u}, true); err != nil {
						panic(err)
					}
				}
			}
		})
		perRound := time.Duration(0)
		if rounds > 0 {
			perRound = search / time.Duration(rounds)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(a.N), dur(pre), fmt.Sprint(rounds), dur(search), dur(perRound), fmt.Sprint(isSize)})
	}
	t.Notes = append(t.Notes, "the current solution and its blocked neighbourhood are unary predicates updated through Gaifman-preserving updates; the improvement query is quantifier-free (see DESIGN.md §3 on the quantifier-elimination substitution)")
	return t
}

// E9Coloring reports the low-treedepth colouring substrate (Proposition 1).
func E9Coloring(sizes []int) *Table {
	t := &Table{
		ID:     "E9",
		Title:  "Low-treedepth colouring quality (Proposition 1)",
		Claim:  "for p = 2, 3 the number of colours and the elimination-forest depth of any ≤p colour classes stay bounded as n grows",
		Header: []string{"workload", "n", "p", "colors", "max forest depth(≤2 classes)", "coloring time"},
	}
	for _, n := range sizes {
		for _, wl := range []struct {
			name string
			db   *workload.Database
		}{
			{"grid", workload.Grid(intSqrt(n), intSqrt(n), 3)},
			{"bounded-degree", workload.BoundedDegree(n, 3, 3)},
			{"pref-attach", workload.PreferentialAttachment(n, 2, 3)},
		} {
			g := wl.db.A.Gaifman()
			for _, p := range []int{2, 3} {
				var col *graph.Coloring
				elapsed := timeIt(func() { col = graph.LowTreedepthColoring(g, p) })
				depth := graph.MaxForestDepth(g, col, 2)
				t.Rows = append(t.Rows, []string{
					wl.name, fmt.Sprint(g.N()), fmt.Sprint(p), fmt.Sprint(col.NumColors), fmt.Sprint(depth), dur(elapsed),
				})
			}
		}
	}
	t.Notes = append(t.Notes, "depth statistics are computed over pairs of colour classes; triples are covered implicitly by the compiler's per-assignment forests")
	return t
}

// E10ProvenancePermanent measures Lemma 23/39: free-semiring permanents with
// constant-delay enumerators.
func E10ProvenancePermanent(columns []int) *Table {
	t := &Table{
		ID:     "E10",
		Title:  "Provenance permanent enumerators (Lemma 23)",
		Claim:  "the enumerator for the permanent of a k×n matrix of provenance values is built in O(n) and has delay independent of n",
		Header: []string{"k", "n", "build", "first 1000: avg delay", "max delay"},
	}
	const k = 2
	for _, n := range columns {
		c := circuit.NewBuilder()
		var entries []circuit.PermEntry
		for col := 0; col < n; col++ {
			for row := 0; row < k; row++ {
				key := structure.MakeWeightKey("cell", structure.Tuple{row, col})
				entries = append(entries, circuit.PermEntry{Row: row, Col: col, Gate: c.Input(key)})
			}
		}
		c.SetOutput(c.Perm(k, n, entries))
		inputs := func(key structure.WeightKey) enumerate.Value {
			return enumerate.Gen(provenance.Generator("g" + key.Tuple))
		}
		var e *enumerate.Enumerator
		build := timeIt(func() { e = enumerate.New(c, inputs) })
		cur := e.Cursor()
		var maxDelay, total time.Duration
		count := 0
		for count < 1000 {
			start := time.Now()
			_, ok := cur.Next()
			d := time.Since(start)
			if !ok {
				break
			}
			count++
			total += d
			if d > maxDelay {
				maxDelay = d
			}
		}
		avg := time.Duration(0)
		if count > 0 {
			avg = total / time.Duration(count)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(k), fmt.Sprint(n), dur(build), dur(avg), dur(maxDelay)})
	}
	return t
}

// E11ParallelEvaluation measures the level-parallel circuit evaluator
// against the sequential one on the compiled triangle query.
func E11ParallelEvaluation(sizes []int, workers int) *Table {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	t := &Table{
		ID:     "E11",
		Title:  "Level-parallel circuit evaluation",
		Claim:  "the compiled circuits are wide and shallow (bounded depth, linear width), so evaluating each topological level across a worker pool scales with the number of cores",
		Header: []string{"n", "gates", "levels", "max width", "eval(seq)", fmt.Sprintf("eval(par, %d workers)", workers), "speedup", "agree"},
	}
	for _, n := range sizes {
		db := workload.BoundedDegree(n, 3, 7)
		w := db.Weights()
		res, err := compile.Compile(db.A, TriangleQuery(), compile.Options{})
		if err != nil {
			panic(err)
		}
		val := compile.NewValuation(res, semiring.Nat, w)
		var seqVals, parVals []int64
		seq := timeIt(func() {
			seqVals = circuit.EvaluateAll[int64](res.Circuit, semiring.Nat, val)
		})
		par := timeIt(func() {
			parVals = circuit.ParallelEvaluateAll[int64](res.Circuit, semiring.Nat, val,
				circuit.EvalOptions{Workers: workers, Schedule: res.Schedule})
		})
		agree := len(seqVals) == len(parVals)
		if agree {
			for i := range seqVals {
				if seqVals[i] != parVals[i] {
					agree = false
					break
				}
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(res.Circuit.NumGates()),
			fmt.Sprint(len(res.Schedule.Levels)), fmt.Sprint(res.Schedule.MaxWidth()),
			dur(seq), dur(par), fmt.Sprintf("%.2fx", float64(seq)/float64(par)), fmt.Sprint(agree),
		})
	}
	t.Notes = append(t.Notes, "the schedule is precomputed by compile.Compile; on a single-core machine the speedup column stays near 1x")
	return t
}

// Experiment is a named, runnable experiment.
type Experiment struct {
	ID  string
	Run func() *Table
}

// Registry lists every experiment with its default parameters.
func Registry(quick bool) []Experiment {
	sizes := Sizes(quick)
	small := sizes
	if len(small) > 3 {
		small = small[:3]
	}
	permCols := []int{1000, 10000, 100000}
	if !quick {
		permCols = append(permCols, 1000000)
	}
	// The naive evaluator is cubic for three-variable queries, so it is only
	// run on very small instances.
	naiveCap := 300
	if !quick {
		naiveCap = 500
	}
	// The E16 seed-era nested comparator enumerates all assignments
	// (quadratic here), so its sizes stay modest.
	e16Nested, e16Search := []int{500, 1000, 2000}, []int{20000, 60000}
	if quick {
		e16Nested, e16Search = []int{500, 1000}, []int{20000}
	}
	return []Experiment{
		{"E1", func() *Table { return E1CircuitCompilation(sizes) }},
		{"E2", func() *Table { return E2WeightedTriangles(sizes, naiveCap) }},
		{"E3", func() *Table { return E3Permanent(permCols) }},
		{"E4", func() *Table { return E4DynamicUpdates(small) }},
		{"E5", func() *Table { return E5Enumeration(sizes) }},
		{"E6", func() *Table { return E6PageRank(small) }},
		{"E7", func() *Table { return E7NestedQuery(small) }},
		{"E8", func() *Table { return E8LocalSearch(sizes) }},
		{"E9", func() *Table { return E9Coloring(small) }},
		{"E10", func() *Table { return E10ProvenancePermanent(permCols) }},
		{"E11", func() *Table { return E11ParallelEvaluation(sizes, 0) }},
		{"E12", func() *Table { return E12ServingThroughput(small, 8) }},
		{"E13", func() *Table { return E13BatchedUpdates(small, 10000, 1024, 64) }},
		{"E14", func() *Table { return E14ProgramLayout(quick) }},
		{"E15", func() *Table { return E15FacadeOverhead(small, 10) }},
		{"E16", func() *Table { return E16Replatform(e16Nested, e16Search) }},
		{"E17", func() *Table { return E17InstrumentationOverhead(small, 10) }},
		{"E18", func() *Table { return E18SnapshotReads(small, 10000) }},
		{"E19", func() *Table {
			if quick {
				return E19FleetScaling(500, 24, 12, 8, 32)
			}
			return E19FleetScaling(800, 32, 12, 8, 48)
		}},
		{"E20", func() *Table {
			if quick {
				return E20LivePush(small[:1], 1000, 4000)
			}
			return E20LivePush(small, 2000, 10000)
		}},
	}
}

// RunExperiments executes the experiments across a pool of workers
// goroutines (≤ 0 selects GOMAXPROCS; 1 runs sequentially), returning the
// tables in the input order.  Running the sweep in parallel trades clean
// per-experiment timings for wall-clock throughput: use one worker when the
// absolute numbers matter, many when scanning for regressions.
func RunExperiments(exps []Experiment, workers int) []*Table {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]*Table, len(exps))
	if workers == 1 {
		for i, e := range exps {
			out[i] = e.Run()
		}
		return out
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, e := range exps {
		wg.Add(1)
		go func(i int, e Experiment) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i] = e.Run()
		}(i, e)
	}
	wg.Wait()
	return out
}

// RunAll executes every experiment with default parameters on the given
// worker pool.
func RunAll(quick bool, workers int) []*Table {
	return RunExperiments(Registry(quick), workers)
}
