// Level scheduling and parallel evaluation.
//
// The circuits produced by internal/compile are wide and shallow: Theorem 6
// bounds their depth by a constant depending only on the query, while the
// number of gates grows linearly with the database.  That shape is ideal for
// level-parallel evaluation: group gates by depth (the length of the longest
// path from a leaf), then evaluate each level's gates concurrently — every
// child of a depth-d gate has depth < d, so within a level gates are
// independent.  Permanent gates, with their O(2^rows·rows·cols) column
// dynamic program, dominate evaluation time and parallelise across the pool.
//
// The schedule depends only on the circuit topology, never on the semiring
// or the valuation.  Since the Program refactor it is baked into the frozen
// Program at freeze time; the Schedule type remains as a materialised view
// for callers that consume the level decomposition directly.
package circuit

import (
	"runtime"

	"repro/internal/semiring"
)

// Schedule is a level decomposition of a circuit: Levels[d] lists the ids of
// all gates whose depth is exactly d, in increasing id order.  A schedule is
// immutable once built and is safe for concurrent use by any number of
// evaluations.
type Schedule struct {
	// Levels groups gate ids by depth; level 0 holds the leaves (inputs and
	// constants).
	Levels [][]int

	gates int
}

// NewSchedule returns the level decomposition of the circuit.  It is a view
// of the schedule baked into the circuit's frozen Program, so repeated calls
// share one materialisation.
func NewSchedule(c *Circuit) *Schedule {
	return c.Program().Schedule()
}

// Depth returns the number of levels minus one, i.e. the circuit depth.
func (sc *Schedule) Depth() int { return len(sc.Levels) - 1 }

// NumGates returns the number of gates the schedule covers.
func (sc *Schedule) NumGates() int { return sc.gates }

// MaxWidth returns the size of the largest level, an upper bound on the
// useful degree of parallelism.
func (sc *Schedule) MaxWidth() int {
	w := 0
	for _, lvl := range sc.Levels {
		if len(lvl) > w {
			w = len(lvl)
		}
	}
	return w
}

// EvalOptions configures parallel evaluation.
type EvalOptions struct {
	// Workers is the size of the worker pool; values ≤ 0 select
	// runtime.GOMAXPROCS(0).
	Workers int

	// Schedule is an optional previously obtained schedule for the circuit
	// being evaluated.  The level schedule itself now lives in the frozen
	// Program, so the field only serves as a staleness check: a schedule
	// built for a different circuit (or a stale prefix of this one) panics.
	Schedule *Schedule
}

// minGatesPerWorker is the smallest slice of a level worth handing to a
// separate goroutine; levels narrower than 2·minGatesPerWorker run on the
// calling goroutine.  Cheap gates (add/mul over a few children) cost tens of
// nanoseconds, so very fine-grained fan-out would be pure overhead.
const minGatesPerWorker = 32

// ParallelEvaluate computes the value of the output gate like Evaluate, but
// evaluates each topological level's gates across a worker pool.
func ParallelEvaluate[T any](c *Circuit, s semiring.Semiring[T], v Valuation[T], opts EvalOptions) T {
	if c.Output < 0 {
		panic("circuit: no output gate set")
	}
	vals := ParallelEvaluateAll(c, s, v, opts)
	return vals[c.Output]
}

// ParallelEvaluateAll computes the value of every gate, like EvaluateAll,
// using opts.Workers goroutines per level of the frozen Program's baked
// schedule.  The result is identical to EvaluateAll for any semiring: levels
// are processed in increasing depth order and gates within a level are
// independent, so the evaluation order difference is invisible (each gate
// folds its own children sequentially).
//
// The valuation v and the semiring s are called from multiple goroutines
// concurrently; both must be safe for concurrent use.  All the semirings in
// internal/semiring and the valuations built by compile.NewValuation are
// read-only and qualify.
func ParallelEvaluateAll[T any](c *Circuit, s semiring.Semiring[T], v Valuation[T], opts EvalOptions) []T {
	if opts.Schedule != nil && opts.Schedule.gates != len(c.Gates) {
		panic("circuit: schedule does not match circuit (was the circuit extended after scheduling?)")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return ParallelEvaluateAllProgram(c.Program(), s, v, workers)
}
