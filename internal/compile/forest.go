package compile

import (
	"fmt"
	"math/big"
	"sort"

	"repro/internal/circuit"
	"repro/internal/expr"
	"repro/internal/graph"
	"repro/internal/structure"
)

// maxForestDepth bounds the elimination-forest depth handled by the shape
// machinery (depth sets are stored as 64-bit masks).
const maxForestDepth = 63

// colorForest is the elimination forest of the subgraph of the Gaifman graph
// induced by a set of colours, together with realisability indices used to
// prune shape enumeration.
type colorForest struct {
	forest *graph.Forest
	// toOrig maps subgraph vertex indices to original elements.
	toOrig []int
	// roots lists the forest roots (subgraph indices).
	roots []int
	// depthMask has bit d set when some node has depth d.
	depthMask uint64
	// siblingMeet[m+1][d1] has bit d2 set when two nodes at depths d1, d2 in
	// *different* child subtrees have their deepest common ancestor at depth
	// m; index 0 encodes m = -1 ("different trees").
	siblingMeet [][]uint64
	maxDepth    int
}

// buildColorForest constructs the elimination forest for the induced
// subgraph on the given original elements.
func buildColorForest(gaifman *graph.Graph, vertices []int) (*colorForest, error) {
	sub, toOrig, _ := gaifman.InducedSubgraph(vertices)
	f := graph.EliminationForest(sub)
	if f.MaxDepth > maxForestDepth {
		return nil, fmt.Errorf("compile: elimination forest depth %d exceeds the supported maximum %d; the colouring is too coarse for this graph", f.MaxDepth, maxForestDepth)
	}
	cf := &colorForest{forest: f, toOrig: toOrig, roots: f.Roots(), maxDepth: f.MaxDepth}
	n := f.N()
	// depthsBelow[v]: bitmask of depths occurring in the subtree rooted at v.
	depthsBelow := make([]uint64, n)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return f.Depth[order[i]] > f.Depth[order[j]] })
	for _, v := range order {
		depthsBelow[v] |= 1 << uint(f.Depth[v])
		cf.depthMask |= 1 << uint(f.Depth[v])
	}
	// Propagate child masks to parents: iterating in decreasing depth order
	// is a valid post-order because children are strictly deeper, so a
	// node's own mask is complete before it is folded into its parent.
	for _, v := range order {
		if !f.IsRoot(v) {
			depthsBelow[f.Parent[v]] |= depthsBelow[v]
		}
	}
	// Sibling meets at internal nodes.
	cf.siblingMeet = make([][]uint64, cf.maxDepth+2)
	for i := range cf.siblingMeet {
		cf.siblingMeet[i] = make([]uint64, cf.maxDepth+1)
	}
	recordSiblings := func(meetIdx int, childMasks []uint64) {
		if len(childMasks) < 2 {
			return
		}
		// prefix/suffix ORs to get "others" per child in linear time.
		prefix := make([]uint64, len(childMasks)+1)
		suffix := make([]uint64, len(childMasks)+1)
		for i, m := range childMasks {
			prefix[i+1] = prefix[i] | m
		}
		for i := len(childMasks) - 1; i >= 0; i-- {
			suffix[i] = suffix[i+1] | childMasks[i]
		}
		for i, m := range childMasks {
			others := prefix[i] | suffix[i+1]
			if others == 0 {
				continue
			}
			mm := m
			for mm != 0 {
				d1 := trailingZeros64(mm)
				mm &= mm - 1
				cf.siblingMeet[meetIdx][d1] |= others
			}
		}
	}
	for v := 0; v < n; v++ {
		children := f.Children(v)
		if len(children) >= 2 {
			masks := make([]uint64, len(children))
			for i, c := range children {
				masks[i] = depthsBelow[c]
			}
			recordSiblings(f.Depth[v]+1, masks)
		}
	}
	// Different trees: the virtual forest "root" has the tree roots as
	// children.
	if len(cf.roots) >= 2 {
		masks := make([]uint64, len(cf.roots))
		for i, r := range cf.roots {
			masks[i] = depthsBelow[r]
		}
		recordSiblings(0, masks)
	}
	return cf, nil
}

func trailingZeros64(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// realizable reports whether some pair of nodes at depths d1, d2 meets at
// depth m (m = meetDifferentTrees for different trees).  Comparable pairs
// (m equal to one of the depths) are not consulted here.
func (cf *colorForest) realizable(d1, d2, m int) bool {
	if d1 > cf.maxDepth || d2 > cf.maxDepth {
		return false
	}
	idx := m + 1
	if idx < 0 || idx >= len(cf.siblingMeet) {
		return false
	}
	return cf.siblingMeet[idx][d1]&(1<<uint(d2)) != 0
}

func (cf *colorForest) depthRealizable(d int) bool {
	if d < 0 || d > cf.maxDepth {
		return false
	}
	return cf.depthMask&(1<<uint(d)) != 0
}

// ---------------------------------------------------------------------------
// Monomial preparation
// ---------------------------------------------------------------------------

// preparedMonomial is a monomial with its variables indexed and its
// coefficient adjusted for bound variables that do not occur in any literal
// or weight term (each such variable contributes a factor |A|).
type preparedMonomial struct {
	vars     []string
	varIndex map[string]int
	literals []expr.Literal
	weights  []expr.WeightTerm
	// nullaryWeights are weight terms of arity 0 (applied once, outside the
	// per-variable machinery).
	nullaryWeights []expr.WeightTerm
	coeff          *big.Int
}

// prepareMonomial indexes the variables of a closed monomial and folds
// unused bound variables into the coefficient.
func prepareMonomial(m *expr.Monomial, domainSize int) (*preparedMonomial, error) {
	if free := m.FreeVars(); len(free) > 0 {
		return nil, fmt.Errorf("compile: monomial has free variables %v; close the expression first (see dynamicq for queries with free variables)", free)
	}
	used := map[string]bool{}
	for _, v := range m.Vars() {
		used[v] = true
	}
	pm := &preparedMonomial{varIndex: map[string]int{}, coeff: big.NewInt(m.Coeff)}
	unused := 0
	for _, v := range m.Bound {
		if used[v] {
			pm.varIndex[v] = len(pm.vars)
			pm.vars = append(pm.vars, v)
		} else {
			unused++
		}
	}
	if unused > 0 {
		scale := new(big.Int).Exp(big.NewInt(int64(domainSize)), big.NewInt(int64(unused)), nil)
		pm.coeff.Mul(pm.coeff, scale)
	}
	for _, w := range m.Weights {
		if len(w.Args) == 0 {
			pm.nullaryWeights = append(pm.nullaryWeights, w)
		} else {
			pm.weights = append(pm.weights, w)
		}
	}
	pm.literals = m.Literals
	return pm, nil
}

// shapeConstraintsFor derives the shape constraints of a prepared monomial
// over a given colour forest.
func (pm *preparedMonomial) shapeConstraintsFor(cf *colorForest) shapeConstraints {
	c := shapeConstraints{
		numVars:         len(pm.vars),
		maxDepth:        cf.maxDepth,
		realizable:      cf.realizable,
		depthRealizable: cf.depthRealizable,
	}
	addPairs := func(dst *[][2]int, args []string) {
		idx := make([]int, 0, len(args))
		for _, a := range args {
			idx = append(idx, pm.varIndex[a])
		}
		for i := 0; i < len(idx); i++ {
			for j := i + 1; j < len(idx); j++ {
				if idx[i] != idx[j] {
					*dst = append(*dst, [2]int{idx[i], idx[j]})
				}
			}
		}
	}
	for _, l := range pm.literals {
		if l.IsEquality() {
			p := [2]int{pm.varIndex[l.Args[0]], pm.varIndex[l.Args[1]]}
			if l.Positive {
				c.mustEqual = append(c.mustEqual, p)
			} else {
				c.mustDiffer = append(c.mustDiffer, p)
			}
			continue
		}
		if l.Positive {
			// A positive relation literal can only hold on a Gaifman clique,
			// whose elements are pairwise ancestor-related in the forest.
			addPairs(&c.mustCompare, l.Args)
		}
	}
	for _, w := range pm.weights {
		if len(w.Args) >= 2 {
			// Weights of arity ≥ 2 are non-zero only on relation tuples.
			addPairs(&c.mustCompare, w.Args)
		}
	}
	return c
}

// ---------------------------------------------------------------------------
// Shape compilation over a colour forest
// ---------------------------------------------------------------------------

// shapeBuilder compiles one (monomial, colour assignment, shape) triple into
// a circuit over the data forest, following the recursion of Claim 1 in the
// paper: at each level, a permanent gate assigns the shape slots injectively
// to data nodes, and the entries recurse into the corresponding subtrees.
type shapeBuilder struct {
	c  *circuit.Circuit
	a  *structure.Structure
	cf *colorForest
	pm *preparedMonomial
	// colorAssign[i] is the required colour of variable i; colorOf maps an
	// original element to its colour.
	colorAssign []int
	colorOf     []int
	dynamicRels map[string]bool

	tree *shapeTree
	// slotColor[s] is the required colour of slot s, or -1 when
	// unconstrained, or -2 when contradictory.
	slotColor []int
	// slotLiterals / slotWeights are the literals and weight terms whose
	// deepest argument slot is s.
	slotLiterals [][]int
	slotWeights  [][]int
	feasible     bool
}

// newShapeBuilder prepares the attachment of literals and weight terms to
// shape slots.  It reports infeasibility (the shape cannot support the
// monomial) via the feasible flag.
func newShapeBuilder(c *circuit.Circuit, a *structure.Structure, cf *colorForest, pm *preparedMonomial,
	colorAssign []int, colorOf []int, dynamicRels map[string]bool, sh *shape) *shapeBuilder {

	b := &shapeBuilder{
		c: c, a: a, cf: cf, pm: pm,
		colorAssign: colorAssign, colorOf: colorOf, dynamicRels: dynamicRels,
		feasible: true,
	}
	b.tree = buildShapeTree(sh)
	b.slotColor = make([]int, b.tree.numSlots)
	for s := range b.slotColor {
		b.slotColor[s] = -1
	}
	for v, slot := range b.tree.varSlot {
		want := colorAssign[v]
		switch b.slotColor[slot] {
		case -1:
			b.slotColor[slot] = want
		case want:
		default:
			b.feasible = false
			return b
		}
	}
	b.slotLiterals = make([][]int, b.tree.numSlots)
	b.slotWeights = make([][]int, b.tree.numSlots)

	deepestSlot := func(args []string) (int, bool) {
		best := -1
		for _, arg := range args {
			slot := b.tree.varSlot[b.pm.varIndex[arg]]
			if best == -1 || b.tree.slotDepth[slot] > b.tree.slotDepth[best] {
				best = slot
			}
		}
		// All argument slots must be ancestors of (or equal to) the deepest
		// slot; otherwise the arguments are not pairwise comparable.
		for _, arg := range args {
			slot := b.tree.varSlot[b.pm.varIndex[arg]]
			if !b.slotIsAncestor(slot, best) {
				return best, false
			}
		}
		return best, true
	}

	for li, l := range pm.literals {
		if l.IsEquality() {
			continue // consumed by the shape constraints
		}
		slot, comparable := deepestSlot(l.Args)
		if !comparable {
			if l.Positive {
				// Cannot be satisfied within this shape (enumeration should
				// already have pruned it, but stay safe).
				b.feasible = false
				return b
			}
			// Negative literal over a non-clique: automatically satisfied.
			continue
		}
		b.slotLiterals[slot] = append(b.slotLiterals[slot], li)
	}
	for wi, w := range pm.weights {
		slot, comparable := deepestSlot(w.Args)
		if !comparable {
			// A weight of arity ≥ 2 is zero outside relation tuples, hence
			// zero on non-cliques: the whole monomial vanishes on this shape.
			b.feasible = false
			return b
		}
		b.slotWeights[slot] = append(b.slotWeights[slot], wi)
	}
	return b
}

// slotIsAncestor reports whether slot a is an ancestor of (or equal to)
// slot b in the shape tree.
func (b *shapeBuilder) slotIsAncestor(a, s int) bool {
	for s >= 0 {
		if s == a {
			return true
		}
		s = b.tree.slotParent[s]
	}
	return false
}

// build compiles the shape into a circuit gate and reports whether the gate
// is (structurally) the zero gate.
func (b *shapeBuilder) build() int {
	if !b.feasible {
		return b.c.Zero()
	}
	assign := make([]int, b.tree.numSlots)
	for i := range assign {
		assign[i] = -1
	}
	return b.rec(b.tree.roots, b.cf.roots, assign)
}

// rec builds the circuit assigning the given shape slots (all at one depth,
// sharing a parent) injectively to the candidate data nodes.
func (b *shapeBuilder) rec(slots []int, candidates []int, assign []int) int {
	if len(slots) == 0 {
		return b.c.One()
	}
	var entries []circuit.PermEntry
	cols := 0
	for _, v := range candidates {
		colUsed := false
		for ri, s := range slots {
			g := b.entry(s, v, assign)
			if g == b.c.Zero() {
				continue
			}
			if !colUsed {
				colUsed = true
				cols++
			}
			entries = append(entries, circuit.PermEntry{Row: ri, Col: cols - 1, Gate: g})
		}
	}
	return b.c.Perm(len(slots), cols, entries)
}

// entry builds the circuit for assigning data node v to shape slot s in the
// context assign (which fixes the data nodes of all ancestor slots).
func (b *shapeBuilder) entry(s, v int, assign []int) int {
	// Colour filter.
	if want := b.slotColor[s]; want >= 0 && b.colorOf[b.cf.toOrig[v]] != want {
		return b.c.Zero()
	}
	assign[s] = v
	defer func() { assign[s] = -1 }()

	factors := make([]int, 0, 4)
	// Literals attached to this slot.
	for _, li := range b.slotLiterals[s] {
		l := b.pm.literals[li]
		tuple := b.literalTuple(l.Args, assign)
		if b.dynamicRels[l.Rel] {
			factors = append(factors, b.c.Input(relationInputKey(l.Rel, tuple, l.Positive)))
			continue
		}
		holds := b.a.HasTuple(l.Rel, tuple...)
		if holds != l.Positive {
			return b.c.Zero()
		}
	}
	// Weight terms attached to this slot.
	for _, wi := range b.slotWeights[s] {
		w := b.pm.weights[wi]
		tuple := b.literalTuple(w.Args, assign)
		factors = append(factors, b.c.Input(structure.MakeWeightKey(w.W, tuple)))
	}
	// Recurse into the children slots over the children of v.
	child := b.rec(b.tree.slotChildren[s], b.cf.forest.Children(v), assign)
	if child == b.c.Zero() {
		return b.c.Zero()
	}
	factors = append(factors, child)
	return b.c.Mul(factors...)
}

// literalTuple resolves the argument variables of a literal or weight term
// to original elements under the current slot assignment.
func (b *shapeBuilder) literalTuple(args []string, assign []int) structure.Tuple {
	t := make(structure.Tuple, len(args))
	for i, arg := range args {
		slot := b.tree.varSlot[b.pm.varIndex[arg]]
		node := assign[slot]
		if node < 0 {
			panic(fmt.Sprintf("compile: argument %s resolved before its slot was assigned", arg))
		}
		t[i] = b.cf.toOrig[node]
	}
	return t
}

// ---------------------------------------------------------------------------
// Dynamic relation inputs
// ---------------------------------------------------------------------------

const (
	dynamicPositivePrefix = "rel+:"
	dynamicNegativePrefix = "rel-:"
)

// relationInputKey is the weight key of the 0/1 input representing the
// (possibly negated) membership of a tuple in a dynamic relation
// (the weight functions v⁺_R, v⁻_R of Lemma 40).
func relationInputKey(rel string, tuple structure.Tuple, positive bool) structure.WeightKey {
	prefix := dynamicPositivePrefix
	if !positive {
		prefix = dynamicNegativePrefix
	}
	return structure.WeightKey{Weight: prefix + rel, Tuple: tuple.Key()}
}

// DecodeRelationKey reports whether the weight key is a dynamic-relation
// input and, if so, returns the relation, tuple and sign.
func DecodeRelationKey(key structure.WeightKey) (rel string, tuple structure.Tuple, positive bool, ok bool) {
	switch {
	case len(key.Weight) > len(dynamicPositivePrefix) && key.Weight[:len(dynamicPositivePrefix)] == dynamicPositivePrefix:
		return key.Weight[len(dynamicPositivePrefix):], structure.ParseTupleKey(key.Tuple), true, true
	case len(key.Weight) > len(dynamicNegativePrefix) && key.Weight[:len(dynamicNegativePrefix)] == dynamicNegativePrefix:
		return key.Weight[len(dynamicNegativePrefix):], structure.ParseTupleKey(key.Tuple), false, true
	default:
		return "", nil, false, false
	}
}

// RelationInputKeys returns the pair of weight keys (asserted, negated) that
// represent membership of the tuple in a dynamic relation.
func RelationInputKeys(rel string, tuple structure.Tuple) (positive, negative structure.WeightKey) {
	return relationInputKey(rel, tuple, true), relationInputKey(rel, tuple, false)
}
