package enumerate

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/parser"
	"repro/internal/workload"
)

// TestNewParallelMatchesNew checks that the level-parallel emptiness pass
// produces an enumerator indistinguishable from the sequential one: same
// per-gate emptiness and the same multiset of enumerated monomials.
func TestNewParallelMatchesNew(t *testing.T) {
	db := workload.Grid(12, 12, 3)
	phi := parser.MustParseFormula("E(x,y) & E(y,z) & !(x = z)")
	vars := []string{"x", "y", "z"}

	seq, err := EnumerateAnswers(db.A, phi, vars, compile.Options{})
	if err != nil {
		t.Fatalf("EnumerateAnswers: %v", err)
	}
	c := seq.Result().Circuit
	want := monomialMultiset(seq.enum.CollectAll(0))

	// Gate-level comparison must reuse one compiled circuit: recompiling can
	// legitimately produce a different (equivalent) circuit.
	for _, workers := range []int{0, 2, 4} {
		par := NewParallel(c, seq.inputValue, seq.Result().Schedule, workers)
		for id := 0; id < c.NumGates(); id++ {
			if seq.enum.GateEmpty(id) != par.GateEmpty(id) {
				t.Fatalf("workers=%d: gate %d emptiness differs (seq %v, par %v)",
					workers, id, seq.enum.GateEmpty(id), par.GateEmpty(id))
			}
		}
		got := monomialMultiset(par.CollectAll(0))
		if !equalStringSlices(got, want) {
			t.Fatalf("workers=%d: parallel preprocessing enumerates a different answer multiset", workers)
		}
	}

	// The end-to-end wrapper compiles its own circuit; compare semantics.
	par, err := EnumerateAnswersParallel(db.A, phi, vars, compile.Options{}, 4)
	if err != nil {
		t.Fatalf("EnumerateAnswersParallel: %v", err)
	}
	if got, wantN := par.Count(), seq.Count(); got != wantN {
		t.Fatalf("EnumerateAnswersParallel Count = %d, want %d", got, wantN)
	}
	if got, wantN := len(par.Collect(0)), len(want); got != wantN {
		t.Fatalf("EnumerateAnswersParallel yields %d answers, want %d", got, wantN)
	}
}
