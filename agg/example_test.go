package agg_test

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/agg"
)

// exampleDB is a tiny database in the dbio text format: a directed triangle
// 0→1→2→0 plus the edge 2→3, marks S = {0, 2}, edge weights w and vertex
// weights u.
const exampleDB = `
domain 4
rel E 2
rel S 1
wsym w 2
wsym u 1
E 0 1
E 1 2
E 2 0
E 2 3
S 0
S 2
w 0 1 2
w 1 2 3
w 2 0 5
w 2 3 1
u 0 1
u 1 2
u 2 3
u 3 4
`

// Open a database, prepare a weighted query once, and evaluate the shared
// compilation in two semirings.
func Example() {
	ctx := context.Background()
	eng, err := agg.OpenReader(strings.NewReader(exampleDB))
	if err != nil {
		panic(err)
	}

	p, err := eng.Prepare(ctx, "sum x, y . [E(x,y)] * w(x,y)")
	if err != nil {
		panic(err)
	}
	total, err := p.Eval(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Println("total edge weight:", total)

	// The same circuit, rebound to the tropical semiring: no recompilation.
	mp, err := p.In("minplus")
	if err != nil {
		panic(err)
	}
	lightest, err := mp.Eval(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Println("lightest edge:", lightest)

	// Output:
	// total edge weight: 11
	// lightest edge: 1
}

// A query with a free variable answers point queries: one argument per free
// variable, logarithmic time per query (Theorem 8).
func Example_pointQuery() {
	ctx := context.Background()
	eng, err := agg.OpenReader(strings.NewReader(exampleDB))
	if err != nil {
		panic(err)
	}
	p, err := eng.Prepare(ctx, "sum y . [E(x,y)] * w(x,y)")
	if err != nil {
		panic(err)
	}
	fmt.Println("free variables:", p.FreeVars())
	for x := 0; x < 4; x++ {
		v, err := p.Eval(ctx, x)
		if err != nil {
			panic(err)
		}
		fmt.Printf("f(%d) = %s\n", x, v)
	}

	// Output:
	// free variables: [x]
	// f(0) = 2
	// f(1) = 3
	// f(2) = 6
	// f(3) = 0
}

// Sessions maintain a compiled query under weight and tuple updates, with
// logarithmic cost per update and atomic batches.
func Example_session() {
	ctx := context.Background()
	eng, err := agg.OpenReader(strings.NewReader(exampleDB))
	if err != nil {
		panic(err)
	}
	p, err := eng.Prepare(ctx, "sum x, y . [E(x,y)] * w(x,y)", agg.WithDynamic("E"))
	if err != nil {
		panic(err)
	}
	s, err := p.Session()
	if err != nil {
		panic(err)
	}
	defer s.Close()

	v, _ := s.Eval(ctx)
	fmt.Println("initial:", v)

	if err := s.Set(agg.SetWeight("w", []int{0, 1}, 10)); err != nil {
		panic(err)
	}
	v, _ = s.Eval(ctx)
	fmt.Println("after w(0,1)=10:", v)

	// One atomic batch, one propagation wave: delete an edge, reset the
	// weight.
	err = s.ApplyBatch([]agg.Change{
		agg.SetTuple("E", []int{2, 3}, false),
		agg.SetWeight("w", []int{0, 1}, 2),
	})
	if err != nil {
		panic(err)
	}
	v, _ = s.Eval(ctx)
	fmt.Println("after batch:", v)

	// Output:
	// initial: 11
	// after w(0,1)=10: 19
	// after batch: 10
}

// A first-order formula prepares in formula mode: its answer set is counted
// and streamed with constant delay (Theorem 24).
func Example_enumerate() {
	ctx := context.Background()
	eng, err := agg.OpenReader(strings.NewReader(exampleDB))
	if err != nil {
		panic(err)
	}
	p, err := eng.Prepare(ctx, "E(x,y) & S(x)")
	if err != nil {
		panic(err)
	}
	n, err := p.AnswerCount(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("answers over %v: %d\n", p.AnswerVars(), n)
	// Enumeration order is unspecified; sort the answers for stable output.
	var answers [][]int
	for ans, err := range p.Enumerate(ctx) {
		if err != nil {
			panic(err)
		}
		answers = append(answers, ans)
	}
	sort.Slice(answers, func(i, j int) bool {
		a, b := answers[i], answers[j]
		return a[0] < b[0] || (a[0] == b[0] && a[1] < b[1])
	})
	for _, ans := range answers {
		fmt.Printf("  (%d, %d)\n", ans[0], ans[1])
	}

	// Output:
	// answers over [x y]: 3
	//   (0, 1)
	//   (2, 0)
	//   (2, 3)
}
