package parser

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/logic"
	"repro/internal/semiring"
	"repro/internal/structure"
)

func mustSig() *structure.Signature {
	return structure.MustSignature(
		[]structure.RelSymbol{{Name: "E", Arity: 2}, {Name: "R", Arity: 1}, {Name: "V", Arity: 1}},
		[]structure.WeightSymbol{{Name: "w", Arity: 2}, {Name: "u", Arity: 1}},
	)
}

func buildStructure(n, m int, seed int64) (*structure.Structure, *structure.Weights[int64]) {
	sig := mustSig()
	a := structure.NewStructure(sig, n)
	weights := structure.NewWeights[int64]()
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < m; i++ {
		x, y := r.Intn(n), r.Intn(n)
		if x == y || a.HasTuple("E", x, y) {
			continue
		}
		a.MustAddTuple("E", x, y)
		weights.Set("w", structure.Tuple{x, y}, int64(r.Intn(9)+1))
	}
	for v := 0; v < n; v++ {
		if r.Intn(2) == 0 {
			a.MustAddTuple("R", v)
		}
		a.MustAddTuple("V", v)
		weights.Set("u", structure.Tuple{v}, int64(r.Intn(5)))
	}
	return a, weights
}

func TestParseExprBasics(t *testing.T) {
	cases := []struct {
		input string
		want  expr.Expr
	}{
		{"3", expr.N(3)},
		{"w(x, y)", expr.W("w", "x", "y")},
		{"u(x)", expr.W("u", "x")},
		{"c", expr.W("c")},
		{"c()", expr.W("c")},
		{"[E(x,y)]", expr.Guard(logic.R("E", "x", "y"))},
		{"2 + 3", expr.Plus(expr.N(2), expr.N(3))},
		{"2 * 3", expr.Times(expr.N(2), expr.N(3))},
		{"2 · 3", expr.Times(expr.N(2), expr.N(3))},
		{"2 + 3 * 4", expr.Plus(expr.N(2), expr.Times(expr.N(3), expr.N(4)))},
		{"(2 + 3) * 4", expr.Times(expr.Plus(expr.N(2), expr.N(3)), expr.N(4))},
		{"sum x . u(x)", expr.Agg([]string{"x"}, expr.W("u", "x"))},
		{"sum x, y . [E(x,y)] * w(x,y)",
			expr.Agg([]string{"x", "y"}, expr.Times(expr.Guard(logic.R("E", "x", "y")), expr.W("w", "x", "y")))},
		{"Σ_{x,y} ([E(x,y)])", expr.Agg([]string{"x", "y"}, expr.Guard(logic.R("E", "x", "y")))},
		{"sum x . u(x) + 1", expr.Agg([]string{"x"}, expr.Plus(expr.W("u", "x"), expr.N(1)))},
		{"(sum x . u(x)) + 1", expr.Plus(expr.Agg([]string{"x"}, expr.W("u", "x")), expr.N(1))},
	}
	for _, c := range cases {
		got, err := ParseExpr(c.input)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", c.input, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseExpr(%q) = %#v, want %#v", c.input, got, c.want)
		}
	}
}

func TestParseFormulaBasics(t *testing.T) {
	cases := []struct {
		input string
		want  logic.Formula
	}{
		{"true", logic.True()},
		{"false", logic.False()},
		{"E(x,y)", logic.R("E", "x", "y")},
		{"x = y", logic.Equal("x", "y")},
		{"x != y", logic.Neg(logic.Equal("x", "y"))},
		{"x ≠ y", logic.Neg(logic.Equal("x", "y"))},
		{"!E(x,y)", logic.Neg(logic.R("E", "x", "y"))},
		{"not E(x,y)", logic.Neg(logic.R("E", "x", "y"))},
		{"E(x,y) & E(y,x)", logic.Conj(logic.R("E", "x", "y"), logic.R("E", "y", "x"))},
		{"E(x,y) and E(y,x)", logic.Conj(logic.R("E", "x", "y"), logic.R("E", "y", "x"))},
		{"E(x,y) | E(y,x)", logic.Disj(logic.R("E", "x", "y"), logic.R("E", "y", "x"))},
		{"R(x) & R(y) | x = y",
			logic.Disj(logic.Conj(logic.R("R", "x"), logic.R("R", "y")), logic.Equal("x", "y"))},
		{"exists y . E(x,y)", logic.Ex([]string{"y"}, logic.R("E", "x", "y"))},
		{"∃y.(E(x,y))", logic.Ex([]string{"y"}, logic.R("E", "x", "y"))},
		{"forall y . E(x,y) | x = y",
			logic.All([]string{"y"}, logic.Disj(logic.R("E", "x", "y"), logic.Equal("x", "y")))},
		{"exists y, z . E(x,y) & E(y,z)",
			logic.Ex([]string{"y", "z"}, logic.Conj(logic.R("E", "x", "y"), logic.R("E", "y", "z")))},
		{"!(x = y) & E(x,y)",
			logic.Conj(logic.Neg(logic.Equal("x", "y")), logic.R("E", "x", "y"))},
	}
	for _, c := range cases {
		got, err := ParseFormula(c.input)
		if err != nil {
			t.Errorf("ParseFormula(%q): %v", c.input, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseFormula(%q) = %#v, want %#v", c.input, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	exprInputs := []string{
		"",
		"+ 3",
		"3 +",
		"sum . u(x)",
		"sum x u(x) )",
		"[E(x,y)",
		"(2 + 3",
		"w(x,",
		"w(x y)",
		"2 2",
		"sum 3 . u(x)",
		"3 # 4",
	}
	for _, in := range exprInputs {
		if _, err := ParseExpr(in); err == nil {
			t.Errorf("ParseExpr(%q) unexpectedly succeeded", in)
		}
	}
	formulaInputs := []string{
		"",
		"E(x,y",
		"x =",
		"= y",
		"E(x,y) &",
		"exists . E(x,y)",
		"x",
		"E(x,y) extra(z)",
		"(E(x,y)",
	}
	for _, in := range formulaInputs {
		if _, err := ParseFormula(in); err == nil {
			t.Errorf("ParseFormula(%q) unexpectedly succeeded", in)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := ParseExpr("sum x . u(x) + + 2")
	if err == nil {
		t.Fatal("expected an error")
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("expected *Error, got %T", err)
	}
	if perr.Pos <= 0 || perr.Pos >= len(perr.Input) {
		t.Errorf("error position %d out of range", perr.Pos)
	}
	if !strings.Contains(err.Error(), "^") {
		t.Errorf("error message should contain a caret marker:\n%s", err)
	}
}

func TestParseTriangleQueryEvaluates(t *testing.T) {
	a, w := buildStructure(40, 140, 3)
	src := "sum x, y, z . [E(x,y) & E(y,z) & E(z,x)] * w(x,y) * w(y,z) * w(z,x)"
	parsed := MustParseExpr(src)
	built := expr.Agg([]string{"x", "y", "z"}, expr.Times(
		expr.Guard(logic.Conj(logic.R("E", "x", "y"), logic.R("E", "y", "z"), logic.R("E", "z", "x"))),
		expr.W("w", "x", "y"), expr.W("w", "y", "z"), expr.W("w", "z", "x"),
	))
	got := expr.Eval[int64](semiring.Nat, a, w, parsed, map[string]structure.Element{})
	want := expr.Eval[int64](semiring.Nat, a, w, built, map[string]structure.Element{})
	if got != want {
		t.Fatalf("parsed query evaluates to %d, hand-built to %d", got, want)
	}
}

// randomTestExpr generates a random closed weighted expression over the
// signature of buildStructure, for round-trip testing.
func randomTestExpr(r *rand.Rand, vars []string, depth int) expr.Expr {
	pickVar := func() string { return vars[r.Intn(len(vars))] }
	if depth <= 0 || r.Intn(4) == 0 {
		switch r.Intn(4) {
		case 0:
			return expr.N(int64(r.Intn(5)))
		case 1:
			return expr.W("u", pickVar())
		case 2:
			return expr.W("w", pickVar(), pickVar())
		default:
			switch r.Intn(3) {
			case 0:
				return expr.Guard(logic.R("E", pickVar(), pickVar()))
			case 1:
				return expr.Guard(logic.R("R", pickVar()))
			default:
				return expr.Guard(logic.Neg(logic.Equal(pickVar(), pickVar())))
			}
		}
	}
	switch r.Intn(3) {
	case 0:
		return expr.Plus(randomTestExpr(r, vars, depth-1), randomTestExpr(r, vars, depth-1))
	case 1:
		return expr.Times(randomTestExpr(r, vars, depth-1), randomTestExpr(r, vars, depth-1))
	default:
		v := "q" + string(rune('a'+r.Intn(3)))
		inner := append(append([]string(nil), vars...), v)
		return expr.Agg([]string{v}, randomTestExpr(r, inner, depth-1))
	}
}

func TestRoundTripRandomExpressions(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	a, w := buildStructure(12, 40, 5)
	for round := 0; round < 120; round++ {
		e := expr.Agg([]string{"x", "y"}, randomTestExpr(r, []string{"x", "y"}, 3))
		want := expr.Eval[int64](semiring.Nat, a, w, e, map[string]structure.Element{})

		// Round-trip through the ASCII printer.
		ascii := FormatExpr(e)
		parsed, err := ParseExpr(ascii)
		if err != nil {
			t.Fatalf("round %d: ParseExpr(FormatExpr) failed on %q: %v", round, ascii, err)
		}
		if got := expr.Eval[int64](semiring.Nat, a, w, parsed, map[string]structure.Element{}); got != want {
			t.Fatalf("round %d: ASCII round-trip changed value: %d vs %d\nexpr: %s", round, got, want, ascii)
		}

		// Round-trip through the expression's own Unicode notation.
		uni := e.String()
		parsedUni, err := ParseExpr(uni)
		if err != nil {
			t.Fatalf("round %d: ParseExpr(String) failed on %q: %v", round, uni, err)
		}
		if got := expr.Eval[int64](semiring.Nat, a, w, parsedUni, map[string]structure.Element{}); got != want {
			t.Fatalf("round %d: Unicode round-trip changed value: %d vs %d\nexpr: %s", round, got, want, uni)
		}
	}
}

// randomTestFormula generates a random formula over E, R, = with the given
// free variables.
func randomTestFormula(r *rand.Rand, vars []string, depth int) logic.Formula {
	pickVar := func() string { return vars[r.Intn(len(vars))] }
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(4) {
		case 0:
			return logic.R("E", pickVar(), pickVar())
		case 1:
			return logic.R("R", pickVar())
		case 2:
			return logic.Equal(pickVar(), pickVar())
		default:
			return logic.True()
		}
	}
	switch r.Intn(4) {
	case 0:
		return logic.Conj(randomTestFormula(r, vars, depth-1), randomTestFormula(r, vars, depth-1))
	case 1:
		return logic.Disj(randomTestFormula(r, vars, depth-1), randomTestFormula(r, vars, depth-1))
	case 2:
		return logic.Neg(randomTestFormula(r, vars, depth-1))
	default:
		v := "q" + string(rune('a'+r.Intn(3)))
		inner := append(append([]string(nil), vars...), v)
		if r.Intn(2) == 0 {
			return logic.Ex([]string{v}, randomTestFormula(r, inner, depth-1))
		}
		return logic.All([]string{v}, randomTestFormula(r, inner, depth-1))
	}
}

func TestRoundTripRandomFormulas(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	a, _ := buildStructure(10, 30, 9)
	vars := []string{"x", "y"}
	for round := 0; round < 150; round++ {
		f := randomTestFormula(r, vars, 3)
		want := logic.Answers(f, a, vars)

		ascii := FormatFormula(f)
		parsed, err := ParseFormula(ascii)
		if err != nil {
			t.Fatalf("round %d: ParseFormula(FormatFormula) failed on %q: %v", round, ascii, err)
		}
		got := logic.Answers(parsed, a, vars)
		if len(got) != len(want) {
			t.Fatalf("round %d: ASCII round-trip changed answers (%d vs %d) for %q", round, len(got), len(want), ascii)
		}

		uni := f.String()
		parsedUni, err := ParseFormula(uni)
		if err != nil {
			t.Fatalf("round %d: ParseFormula(String) failed on %q: %v", round, uni, err)
		}
		gotUni := logic.Answers(parsedUni, a, vars)
		if len(gotUni) != len(want) {
			t.Fatalf("round %d: Unicode round-trip changed answers for %q", round, uni)
		}
	}
}

func TestFormatExprExamples(t *testing.T) {
	e := expr.Agg([]string{"x", "y"}, expr.Times(
		expr.Guard(logic.Conj(logic.R("E", "x", "y"), logic.Neg(logic.Equal("x", "y")))),
		expr.Plus(expr.W("u", "x"), expr.N(1)),
	))
	got := FormatExpr(e)
	want := "sum x, y . [E(x, y) & x != y] * (u(x) + 1)"
	if got != want {
		t.Errorf("FormatExpr = %q, want %q", got, want)
	}
	f := logic.Ex([]string{"y"}, logic.Conj(logic.R("E", "x", "y"), logic.Disj(logic.R("R", "y"), logic.R("R", "x"))))
	gotF := FormatFormula(f)
	wantF := "exists y . E(x, y) & (R(y) | R(x))"
	if gotF != wantF {
		t.Errorf("FormatFormula = %q, want %q", gotF, wantF)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("MustParseExpr should panic on invalid input")
		}
	}()
	MustParseExpr("sum . ")
}
