// Package kc analyses compiled circuits through the lens of knowledge
// compilation and factorized databases.
//
// The paper observes that the circuits produced by Theorem 6 generalise
// deterministic decomposable negation normal forms (d-DNNF, Darwiche) and can
// be viewed as factorized representations of query answers (Olteanu and
// Závodný): multiplication and permanent gates combine sub-circuits over
// disjoint sets of inputs (decomposability), and addition gates combine
// mutually exclusive alternatives (determinism).  These structural
// properties are exactly what make counting, enumeration and updates cheap.
//
// This package makes those properties checkable:
//
//   - Analyze computes, for every gate, the set of weight inputs it depends
//     on, and CheckDecomposable verifies the disjointness conditions.
//   - CheckDeterministic verifies (semantically, via the free semiring) that
//     no addition or permanent gate produces the same monomial twice.
//   - ModelCount counts the monomials of the circuit — for the enumeration
//     circuits of Theorem 24 this is exactly the number of query answers.
//   - FactorizationReport quantifies how much smaller the circuit is than
//     the flat table of answers it represents.
//   - DOT renders the circuit for inspection with Graphviz.
package kc

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"repro/internal/circuit"
	"repro/internal/provenance"
	"repro/internal/semiring"
	"repro/internal/structure"
)

// Analysis holds per-gate dependency information for a circuit.
type Analysis struct {
	c *circuit.Circuit
	// vars lists the weight inputs of the circuit in a fixed order.
	vars []structure.WeightKey
	// varIndex maps an input gate id to its position in vars.
	varIndex map[int]int
	// sets[g] is a bitset over vars: the inputs reachable from gate g.
	sets []bitset
}

// bitset is a fixed-width bitset over the circuit's input variables.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }
func (b bitset) or(other bitset) {
	for i := range b {
		b[i] |= other[i]
	}
}
func (b bitset) intersects(other bitset) bool {
	for i := range b {
		if b[i]&other[i] != 0 {
			return true
		}
	}
	return false
}
func (b bitset) count() int {
	total := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			total++
		}
	}
	return total
}

// Analyze computes the input-dependency sets of every gate.
func Analyze(c *circuit.Circuit) *Analysis {
	a := &Analysis{c: c, varIndex: map[int]int{}}
	for id, g := range c.Gates {
		if g.Kind == circuit.KindInput {
			a.varIndex[id] = len(a.vars)
			a.vars = append(a.vars, g.Key)
		}
	}
	a.sets = make([]bitset, len(c.Gates))
	for id, g := range c.Gates {
		s := newBitset(len(a.vars))
		switch g.Kind {
		case circuit.KindInput:
			s.set(a.varIndex[id])
		case circuit.KindConst:
			// no dependencies
		case circuit.KindAdd, circuit.KindMul:
			for _, ch := range g.Children {
				s.or(a.sets[ch])
			}
		case circuit.KindPerm:
			for _, e := range g.Entries {
				s.or(a.sets[e.Gate])
			}
		}
		a.sets[id] = s
	}
	return a
}

// Circuit returns the analysed circuit.
func (a *Analysis) Circuit() *circuit.Circuit { return a.c }

// Variables lists the weight inputs of the circuit in analysis order.
func (a *Analysis) Variables() []structure.WeightKey {
	return append([]structure.WeightKey(nil), a.vars...)
}

// VariablesOf returns the weight inputs that gate g depends on.
func (a *Analysis) VariablesOf(g int) []structure.WeightKey {
	var out []structure.WeightKey
	for i, key := range a.vars {
		if a.sets[g].has(i) {
			out = append(out, key)
		}
	}
	return out
}

// DependencyCount returns the number of inputs gate g depends on.
func (a *Analysis) DependencyCount(g int) int { return a.sets[g].count() }

// DependsOn reports whether gate g depends on the given weight input.
func (a *Analysis) DependsOn(g int, key structure.WeightKey) bool {
	for i, k := range a.vars {
		if k == key {
			return a.sets[g].has(i)
		}
	}
	return false
}

// Violation describes a gate at which a structural property fails.
type Violation struct {
	// Gate is the offending gate id.
	Gate int
	// Property names the violated property ("decomposable" or "deterministic").
	Property string
	// Detail describes the failure.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("gate %d is not %s: %s", v.Gate, v.Property, v.Detail)
}

// CheckDecomposable verifies that every multiplication gate multiplies
// sub-circuits over pairwise disjoint input sets, and that in every permanent
// gate the columns depend on pairwise disjoint input sets.  These conditions
// guarantee that products never multiply two values derived from the same
// weight input, the circuit analogue of d-DNNF decomposability.
func (a *Analysis) CheckDecomposable() []Violation {
	var out []Violation
	for id, g := range a.c.Gates {
		switch g.Kind {
		case circuit.KindMul:
			for i := 0; i < len(g.Children); i++ {
				for j := i + 1; j < len(g.Children); j++ {
					if a.sets[g.Children[i]].intersects(a.sets[g.Children[j]]) {
						out = append(out, Violation{
							Gate:     id,
							Property: "decomposable",
							Detail: fmt.Sprintf("children %d and %d share input variables",
								g.Children[i], g.Children[j]),
						})
					}
				}
			}
		case circuit.KindPerm:
			cols := a.permColumnSets(g)
			keys := make([]int, 0, len(cols))
			for c := range cols {
				keys = append(keys, c)
			}
			sort.Ints(keys)
			for i := 0; i < len(keys); i++ {
				for j := i + 1; j < len(keys); j++ {
					if cols[keys[i]].intersects(cols[keys[j]]) {
						out = append(out, Violation{
							Gate:     id,
							Property: "decomposable",
							Detail: fmt.Sprintf("columns %d and %d share input variables",
								keys[i], keys[j]),
						})
					}
				}
			}
		}
	}
	return out
}

func (a *Analysis) permColumnSets(g circuit.Gate) map[int]bitset {
	cols := map[int]bitset{}
	for _, e := range g.Entries {
		s, ok := cols[e.Col]
		if !ok {
			s = newBitset(len(a.vars))
			cols[e.Col] = s
		}
		s.or(a.sets[e.Gate])
	}
	return cols
}

// CheckDeterministic verifies semantically that no gate produces the same
// monomial more than once when every input is interpreted as a distinct
// generator of the free semiring.  For the boolean enumeration circuits of
// Theorem 24 this is exactly the property that answers are enumerated
// without repetition.
//
// The check materialises one polynomial per gate, so it is intended for
// moderate circuits (tests, diagnostics), not for production-size databases.
func (a *Analysis) CheckDeterministic() []Violation {
	free := provenance.FreeSemiring{}
	val := func(key structure.WeightKey) (*provenance.Poly, bool) {
		return provenance.Var(provenance.Generator(key.Weight + ":" + key.Tuple)), true
	}
	polys := circuit.EvaluateAll[*provenance.Poly](a.c, free, val)
	var out []Violation
	for id, p := range polys {
		if p == nil {
			continue
		}
		kind := a.c.Gates[id].Kind
		if kind != circuit.KindAdd && kind != circuit.KindPerm {
			continue
		}
		for _, m := range p.Monomials() {
			if m.Count > 1 {
				out = append(out, Violation{
					Gate:     id,
					Property: "deterministic",
					Detail:   fmt.Sprintf("monomial %s produced %d times", m.Monomial, m.Count),
				})
				break
			}
		}
	}
	return out
}

// ModelCount evaluates the circuit in (ℤ, +, ·) with every input set to 1,
// i.e. it counts the monomials of the represented polynomial with
// multiplicity.  For an enumeration circuit this is the number of answers.
func ModelCount(c *circuit.Circuit) *big.Int {
	one := func(structure.WeightKey) (*big.Int, bool) { return big.NewInt(1), true }
	return circuit.Evaluate[*big.Int](c, semiring.Big, one)
}

// SupportSize counts the distinct monomials of the circuit by evaluating it
// in the free semiring; unlike ModelCount it collapses repeated monomials.
// Intended for moderate circuits.
func SupportSize(c *circuit.Circuit) int {
	free := provenance.FreeSemiring{}
	val := func(key structure.WeightKey) (*provenance.Poly, bool) {
		return provenance.Var(provenance.Generator(key.Weight + ":" + key.Tuple)), true
	}
	return circuit.Evaluate[*provenance.Poly](c, free, val).NumTerms()
}

// FactorizationReport compares the circuit against the flat representation
// of the answer set it factorizes.
type FactorizationReport struct {
	// CircuitSize is the number of gates plus edges.
	CircuitSize int
	// Answers is the number of represented monomials (answer tuples).
	Answers *big.Int
	// Arity is the answer arity used to compute the flat size.
	Arity int
	// FlatCells is Answers × Arity: the number of cells of the flat table.
	FlatCells *big.Int
	// CompressionRatio is FlatCells / CircuitSize (0 when the circuit is
	// empty or the answer count does not fit a float64).
	CompressionRatio float64
}

// Factorization measures how compactly the circuit represents an answer set
// of the given arity.
func Factorization(c *circuit.Circuit, arity int) FactorizationReport {
	report := FactorizationReport{
		CircuitSize: c.Size(),
		Answers:     ModelCount(c),
		Arity:       arity,
	}
	report.FlatCells = new(big.Int).Mul(report.Answers, big.NewInt(int64(arity)))
	if report.CircuitSize > 0 {
		cells, _ := new(big.Float).SetInt(report.FlatCells).Float64()
		report.CompressionRatio = cells / float64(report.CircuitSize)
	}
	return report
}

// DOT renders the circuit in Graphviz dot syntax.  Input gates are labelled
// with their weight key, constants with their value, and permanent gates
// with their matrix dimensions.
func DOT(c *circuit.Circuit) string {
	var b strings.Builder
	b.WriteString("digraph circuit {\n  rankdir=BT;\n  node [fontname=\"monospace\"];\n")
	for id, g := range c.Gates {
		var label, shape string
		switch g.Kind {
		case circuit.KindInput:
			label = fmt.Sprintf("%s(%s)", g.Key.Weight, g.Key.Tuple)
			shape = "box"
		case circuit.KindConst:
			label = g.N.String()
			shape = "box"
		case circuit.KindAdd:
			label = "+"
			shape = "circle"
		case circuit.KindMul:
			label = "×"
			shape = "circle"
		case circuit.KindPerm:
			label = fmt.Sprintf("perm %d×%d", g.Rows, g.Cols)
			shape = "diamond"
		}
		style := ""
		if id == c.Output {
			style = ", penwidth=2"
		}
		fmt.Fprintf(&b, "  g%d [label=%q, shape=%s%s];\n", id, label, shape, style)
	}
	for id, g := range c.Gates {
		if g.Kind == circuit.KindPerm {
			for _, e := range g.Entries {
				fmt.Fprintf(&b, "  g%d -> g%d [label=\"r%dc%d\"];\n", e.Gate, id, e.Row, e.Col)
			}
			continue
		}
		for _, ch := range g.Children {
			fmt.Fprintf(&b, "  g%d -> g%d;\n", ch, id)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
