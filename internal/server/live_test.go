package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// subscribeLine mirrors the NDJSON / SSE-data wire shape of /subscribe.
type subscribeLine struct {
	Epoch     uint64  `json:"epoch"`
	Kind      string  `json:"kind"`
	Value     string  `json:"value"`
	Count     int64   `json:"count"`
	Reset     bool    `json:"reset"`
	Answers   [][]int `json:"answers"`
	Added     [][]int `json:"added"`
	Removed   [][]int `json:"removed"`
	Coalesced uint64  `json:"coalesced"`
	Heartbeat bool    `json:"heartbeat"`
	Done      bool    `json:"done"`
	Streamed  int     `json:"streamed"`
}

// nextLine reads NDJSON lines until one that is not a heartbeat.
func nextLine(t *testing.T, sc *bufio.Scanner) subscribeLine {
	t.Helper()
	for sc.Scan() {
		var l subscribeLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if l.Heartbeat {
			continue
		}
		return l
	}
	t.Fatalf("stream ended early: %v", sc.Err())
	return subscribeLine{}
}

func mustBatch(t *testing.T, url, session string, updates []map[string]any) {
	t.Helper()
	resp, code := postJSON(t, url+"/batch", map[string]any{"session": session, "updates": updates})
	if code != http.StatusOK {
		t.Fatalf("/batch failed: %v", resp)
	}
}

// TestSubscribeNDJSONStream covers the default NDJSON mode end to end: an
// initial snapshot at the current epoch, one pushed update per committed
// batch, a terminal summary under limit, and the push counters.
func TestSubscribeNDJSONStream(t *testing.T) {
	srv, ts, db := newTestServer(t, 6)
	if resp, code := postJSON(t, ts.URL+"/session", map[string]any{
		"name": "live", "expr": edgeSum, "semiring": "natural",
	}); code != http.StatusOK {
		t.Fatalf("creating session: %v", resp)
	}
	base, code := postJSON(t, ts.URL+"/point", map[string]any{"session": "live", "args": []int{}})
	if code != http.StatusOK {
		t.Fatalf("baseline point: %v", base)
	}

	resp, err := http.Get(ts.URL + "/subscribe?session=live&limit=3")
	if err != nil {
		t.Fatalf("GET /subscribe: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /subscribe: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	sc := bufio.NewScanner(resp.Body)

	initial := nextLine(t, sc)
	if initial.Epoch != 0 || initial.Kind != "value" || initial.Value != base["value"] {
		t.Fatalf("initial update = %+v, want epoch 0 with value %v", initial, base["value"])
	}

	edges := db.A.Tuples("E")
	mustBatch(t, ts.URL, "live", []map[string]any{{"weight": "w", "tuple": edges[0], "value": 100}})
	first := nextLine(t, sc)
	if first.Epoch == 0 || first.Value == initial.Value {
		t.Fatalf("after batch: %+v, want new epoch and value", first)
	}
	mustBatch(t, ts.URL, "live", []map[string]any{{"weight": "w", "tuple": edges[1], "value": 200}})
	second := nextLine(t, sc)
	if second.Epoch <= first.Epoch {
		t.Fatalf("epochs not monotone: %d then %d", first.Epoch, second.Epoch)
	}

	done := nextLine(t, sc)
	if !done.Done || done.Streamed != 3 || done.Epoch != second.Epoch {
		t.Fatalf("summary = %+v, want done with 3 streamed at epoch %d", done, second.Epoch)
	}

	if got := srv.Stats().Subscriptions.Load(); got != 1 {
		t.Errorf("subscriptions = %d, want 1", got)
	}
	if got := srv.Stats().Pushes.Load(); got != 3 {
		t.Errorf("pushes = %d, want 3", got)
	}
	waitFor(t, "subscriber gauge to drain", func() bool { return srv.Stats().Subscribers.Load() == 0 })

	// The new families surface on /stats and /metrics.
	var snap StatsSnapshot
	get(t, ts.URL+"/stats", &snap)
	if snap.Subscriptions != 1 || snap.Pushes != 3 {
		t.Errorf("/stats = subscriptions %d pushes %d, want 1 and 3", snap.Subscriptions, snap.Pushes)
	}
	body := getText(t, ts.URL+"/metrics")
	for _, want := range []string{
		`aggserve_requests_total{endpoint="subscribe"} 1`,
		"aggserve_push_latency_seconds_count",
		"aggserve_subscribers_active 0",
		"aggserve_pushes_total 3",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestSubscribeSSEResume covers the SSE framing and Last-Event-ID resume: a
// client that reconnects declaring the epoch it already holds gets no
// replayed snapshot, only the next commit.
func TestSubscribeSSEResume(t *testing.T) {
	_, ts, db := newTestServer(t, 6)
	if resp, code := postJSON(t, ts.URL+"/session", map[string]any{
		"name": "sse", "expr": edgeSum, "semiring": "natural",
	}); code != http.StatusOK {
		t.Fatalf("creating session: %v", resp)
	}
	edges := db.A.Tuples("E")

	// First connection: SSE framing of the initial snapshot.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/subscribe?session=sse&mode=sse&limit=1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET /subscribe: %v", err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q, want text/event-stream", ct)
	}
	frames := readSSE(t, resp.Body, 2)
	resp.Body.Close()
	if frames[0].event != "update" || frames[0].id != "0" {
		t.Fatalf("first frame = %+v, want update with id 0", frames[0])
	}
	var ev subscribeLine
	if err := json.Unmarshal([]byte(frames[0].data), &ev); err != nil {
		t.Fatalf("bad SSE data %q: %v", frames[0].data, err)
	}
	if ev.Epoch != 0 || ev.Value == "" {
		t.Fatalf("initial SSE update = %+v", ev)
	}
	if frames[1].event != "done" {
		t.Fatalf("second frame = %+v, want done", frames[1])
	}

	mustBatch(t, ts.URL, "sse", []map[string]any{{"weight": "w", "tuple": edges[0], "value": 50}})

	// Reconnect declaring epoch 1: nothing is owed until the next commit.
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/subscribe?session=sse&mode=sse&limit=1", nil)
	req.Header.Set("Last-Event-ID", "1")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("resumed GET /subscribe: %v", err)
	}
	defer resp.Body.Close()
	go func() {
		time.Sleep(50 * time.Millisecond)
		raw, _ := json.Marshal(map[string]any{"session": "sse", "updates": []map[string]any{
			{"weight": "w", "tuple": edges[1], "value": 60},
		}})
		r, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(raw))
		if err == nil {
			io.Copy(io.Discard, r.Body)
			r.Body.Close()
		}
	}()
	frames = readSSE(t, resp.Body, 1)
	if err := json.Unmarshal([]byte(frames[0].data), &ev); err != nil {
		t.Fatalf("bad resumed SSE data %q: %v", frames[0].data, err)
	}
	if ev.Epoch != 2 {
		t.Fatalf("resumed stream delivered epoch %d, want 2 (no replayed snapshot)", ev.Epoch)
	}
}

// TestSubscribeCountAndDelta drives the enumerable kinds over HTTP: count
// tracks tuple membership, delta starts with a reset and then streams net
// added/removed tuples.
func TestSubscribeCountAndDelta(t *testing.T) {
	_, ts, db := newTestServer(t, 5)
	if resp, code := postJSON(t, ts.URL+"/session", map[string]any{
		"name": "dyn", "expr": "E(x,y) & S(x)", "semiring": "natural", "dynamic": []string{"E"},
	}); code != http.StatusOK {
		t.Fatalf("creating dynamic session: %v", resp)
	}

	openStream := func(kind string, limit int) (*http.Response, *bufio.Scanner) {
		t.Helper()
		url := fmt.Sprintf("%s/subscribe?session=dyn&kind=%s&limit=%d", ts.URL, kind, limit)
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET /subscribe kind=%s: %v", kind, err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("kind=%s: status %d: %s", kind, resp.StatusCode, body)
		}
		return resp, bufio.NewScanner(resp.Body)
	}

	_, counts := openStream("count", 2)
	_, deltas := openStream("delta", 2)
	c0 := nextLine(t, counts)
	d0 := nextLine(t, deltas)
	if !d0.Reset || int64(len(d0.Answers)) != c0.Count {
		t.Fatalf("delta reset %+v does not carry the %d answers counted by %+v", d0, c0.Count, c0)
	}

	// Remove an edge whose source is marked: that answer disappears, so the
	// count drops by one and the delta streams exactly that removal.
	var victim []int
	for _, e := range db.A.Tuples("E") {
		if db.A.HasTuple("S", e[0]) {
			victim = []int{e[0], e[1]}
			break
		}
	}
	if victim == nil {
		t.Fatal("grid has no edge out of a marked vertex")
	}
	mustBatch(t, ts.URL, "dyn", []map[string]any{{"rel": "E", "tuple": victim, "present": false}})

	c1 := nextLine(t, counts)
	d1 := nextLine(t, deltas)
	if d1.Reset {
		t.Fatalf("second delta is a reset: %+v", d1)
	}
	if c1.Count != c0.Count-1 {
		t.Fatalf("count moved %d -> %d, want -1", c0.Count, c1.Count)
	}
	if len(d1.Added) != 0 || len(d1.Removed) != 1 ||
		d1.Removed[0][0] != victim[0] || d1.Removed[0][1] != victim[1] {
		t.Fatalf("delta = %+v, want exactly removed %v", d1, victim)
	}
}

// TestSubscribeDisconnectCancels verifies a client hanging up tears down the
// server-side subscription: the canceled counter moves and the subscriber
// gauge drains while the session keeps taking writes.
func TestSubscribeDisconnectCancels(t *testing.T) {
	srv, ts, db := newTestServer(t, 6)
	if resp, code := postJSON(t, ts.URL+"/session", map[string]any{
		"name": "gone", "expr": edgeSum, "semiring": "natural",
	}); code != http.StatusOK {
		t.Fatalf("creating session: %v", resp)
	}
	resp, err := http.Get(ts.URL + "/subscribe?session=gone")
	if err != nil {
		t.Fatalf("GET /subscribe: %v", err)
	}
	sc := bufio.NewScanner(resp.Body)
	nextLine(t, sc) // initial snapshot: the stream is live
	waitFor(t, "subscriber gauge to rise", func() bool { return srv.Stats().Subscribers.Load() == 1 })
	resp.Body.Close()

	waitFor(t, "canceled counter after disconnect", func() bool { return srv.Stats().Canceled.Load() >= 1 })
	waitFor(t, "subscriber gauge to drain", func() bool { return srv.Stats().Subscribers.Load() == 0 })

	// The writer path is unaffected.
	mustBatch(t, ts.URL, "gone", []map[string]any{{"weight": "w", "tuple": db.A.Tuples("E")[0], "value": 9}})
}

// TestSubscribeErrors covers the 4xx surface of /subscribe.
func TestSubscribeErrors(t *testing.T) {
	_, ts, _ := newTestServer(t, 4)
	if resp, code := postJSON(t, ts.URL+"/session", map[string]any{
		"name": "v", "expr": edgeSum, "semiring": "natural",
	}); code != http.StatusOK {
		t.Fatalf("creating session: %v", resp)
	}
	for _, tc := range []struct {
		query string
		code  int
	}{
		{"session=ghost", http.StatusNotFound},
		{"session=v&kind=nope", http.StatusBadRequest},
		{"session=v&kind=count", http.StatusBadRequest}, // expression query: not enumerable
		{"session=v&from=abc", http.StatusBadRequest},
		{"session=v&mode=websocket", http.StatusBadRequest},
		{"session=v&heartbeat=fast", http.StatusBadRequest},
	} {
		resp, err := http.Get(ts.URL + "/subscribe?" + tc.query)
		if err != nil {
			t.Fatalf("GET /subscribe?%s: %v", tc.query, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("?%s: status %d, want %d (%s)", tc.query, resp.StatusCode, tc.code, body)
		}
	}
}

// TestIngestStream covers POST /ingest: NDJSON changes are applied as
// coalesced waves, acks stream monotone epochs, the summary reports the
// totals, and the final state agrees with the equivalent /batch.
func TestIngestStream(t *testing.T) {
	srv, ts, db := newTestServer(t, 8)
	if resp, code := postJSON(t, ts.URL+"/session", map[string]any{
		"name": "cdc", "expr": edgeSum, "semiring": "natural",
	}); code != http.StatusOK {
		t.Fatalf("creating session: %v", resp)
	}

	edges := db.A.Tuples("E")
	var body bytes.Buffer
	var want int64
	for i, e := range edges {
		v := int64(10 + i%5)
		want += v
		fmt.Fprintf(&body, `{"weight":"w","tuple":[%d,%d],"value":%d}`+"\n", e[0], e[1], v)
	}
	const wave = 16
	resp, err := http.Post(ts.URL+fmt.Sprintf("/ingest?session=cdc&wave=%d", wave), "application/x-ndjson", &body)
	if err != nil {
		t.Fatalf("POST /ingest: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /ingest: status %d", resp.StatusCode)
	}

	var acks []struct {
		Applied int64  `json:"applied"`
		Waves   int64  `json:"waves"`
		Epoch   uint64 `json:"epoch"`
		Done    bool   `json:"done"`
		Error   string `json:"error"`
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var a struct {
			Applied int64  `json:"applied"`
			Waves   int64  `json:"waves"`
			Epoch   uint64 `json:"epoch"`
			Done    bool   `json:"done"`
			Error   string `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &a); err != nil {
			t.Fatalf("bad ack line %q: %v", sc.Text(), err)
		}
		acks = append(acks, a)
	}
	if len(acks) == 0 {
		t.Fatal("no acks streamed")
	}
	final := acks[len(acks)-1]
	if !final.Done || final.Error != "" {
		t.Fatalf("final ack = %+v, want clean done", final)
	}
	if final.Applied != int64(len(edges)) {
		t.Errorf("applied = %d, want %d", final.Applied, len(edges))
	}
	wantWaves := int64((len(edges) + wave - 1) / wave)
	if final.Waves != wantWaves {
		t.Errorf("waves = %d, want %d", final.Waves, wantWaves)
	}
	// Each wave is one committed epoch: acks carry a strictly monotone
	// checkpoint sequence ending at the session's epoch.
	for i := 1; i < len(acks); i++ {
		if acks[i].Epoch < acks[i-1].Epoch || acks[i].Applied < acks[i-1].Applied {
			t.Fatalf("acks not monotone: %+v then %+v", acks[i-1], acks[i])
		}
	}
	h, err := srv.Session("cdc")
	if err != nil {
		t.Fatal(err)
	}
	if final.Epoch != h.Epoch() {
		t.Errorf("final ack epoch %d != session epoch %d", final.Epoch, h.Epoch())
	}

	// The ingested weights land exactly: the closed edge sum is the oracle.
	point, code := postJSON(t, ts.URL+"/point", map[string]any{"session": "cdc", "args": []int{}})
	if code != http.StatusOK {
		t.Fatalf("final point: %v", point)
	}
	if point["value"] != fmt.Sprint(want) {
		t.Errorf("after ingest: value %v, want %d", point["value"], want)
	}

	if got := srv.Stats().Ingests.Load(); got != 1 {
		t.Errorf("ingests = %d, want 1", got)
	}
	if got := srv.Stats().IngestedChanges.Load(); got != int64(len(edges)) {
		t.Errorf("ingestedChanges = %d, want %d", got, len(edges))
	}
	if got := srv.Stats().IngestWaves.Load(); got != wantWaves {
		t.Errorf("ingestWaves = %d, want %d", got, wantWaves)
	}
}

// TestIngestBadLine: a malformed line stops the stream after the waves
// already committed, and the terminal line carries the failing line number.
func TestIngestBadLine(t *testing.T) {
	srv, ts, db := newTestServer(t, 5)
	if resp, code := postJSON(t, ts.URL+"/session", map[string]any{
		"name": "bad", "expr": edgeSum, "semiring": "natural",
	}); code != http.StatusOK {
		t.Fatalf("creating session: %v", resp)
	}
	e := db.A.Tuples("E")[0]
	body := fmt.Sprintf(`{"weight":"w","tuple":[%d,%d],"value":7}`+"\n", e[0], e[1]) +
		"this is not json\n"
	resp, err := http.Post(ts.URL+"/ingest?session=bad&wave=1", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /ingest: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	var last struct {
		Applied int64  `json:"applied"`
		Error   string `json:"error"`
		Code    string `json:"code"`
		AtLine  int64  `json:"atLine"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatalf("bad terminal line %q: %v", lines[len(lines)-1], err)
	}
	if last.Error == "" || last.Code != "invalid_argument" || last.AtLine != 2 {
		t.Fatalf("terminal line = %+v, want invalid_argument at line 2", last)
	}
	if last.Applied != 1 {
		t.Errorf("applied = %d, want the 1 committed wave", last.Applied)
	}
	if got := srv.Stats().Ingests.Load(); got != 0 {
		t.Errorf("failed ingest counted as completed (%d)", got)
	}
	// Unknown sessions fail before any body is consumed.
	resp2, err := http.Post(ts.URL+"/ingest?session=ghost", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /ingest ghost: %v", err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session: status %d, want 404", resp2.StatusCode)
	}
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

func waitFor(t *testing.T, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func get(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
}

func getText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

// sseFrame is one parsed Server-Sent Events frame.
type sseFrame struct {
	id    string
	event string
	data  string
}

// readSSE parses n non-comment frames off an SSE stream.
func readSSE(t *testing.T, r io.Reader, n int) []sseFrame {
	t.Helper()
	sc := bufio.NewScanner(r)
	var frames []sseFrame
	var cur sseFrame
	for sc.Scan() && len(frames) < n {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" || cur.data != "" {
				frames = append(frames, cur)
			}
			cur = sseFrame{}
		case strings.HasPrefix(line, ":"): // heartbeat comment
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data += strings.TrimPrefix(line, "data: ")
		}
	}
	if len(frames) < n {
		t.Fatalf("SSE stream ended after %d frames, want %d (err: %v)", len(frames), n, sc.Err())
	}
	return frames
}
