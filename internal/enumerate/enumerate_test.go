package enumerate

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/circuit"
	"repro/internal/compile"
	"repro/internal/expr"
	"repro/internal/logic"
	"repro/internal/provenance"
	"repro/internal/structure"
)

func key(w string, elems ...int) structure.WeightKey {
	return structure.MakeWeightKey(w, structure.Tuple(elems))
}

// monomialMultiset renders a list of monomials as a sorted multiset of keys.
func monomialMultiset(ms []provenance.Monomial) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Key()
	}
	sort.Strings(out)
	return out
}

// polyMultiset renders an explicit polynomial the same way.
func polyMultiset(p *provenance.Poly) []string {
	var out []string
	for _, t := range p.Monomials() {
		for i := int64(0); i < t.Count; i++ {
			out = append(out, t.Monomial.Key())
		}
	}
	sort.Strings(out)
	return out
}

func equalStringSlices(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkEnumeratorAgainstExplicit builds both the iterator-based enumerator
// and the explicit free-semiring evaluation of a circuit and compares the
// resulting multisets of monomials.
func checkEnumeratorAgainstExplicit(t *testing.T, c *circuit.Circuit, inputs func(structure.WeightKey) Value) {
	t.Helper()
	e := New(c, inputs)
	got := monomialMultiset(e.CollectAll(0))
	want := polyMultiset(EvaluateExplicit(c, inputs))
	if !equalStringSlices(got, want) {
		t.Fatalf("enumerator and explicit evaluation disagree:\n got %v\nwant %v", got, want)
	}
	if e.Empty() != (len(want) == 0) {
		t.Fatalf("Empty() = %v but %d monomials expected", e.Empty(), len(want))
	}
	if count := CountMonomials(c, inputs); count != int64(len(want)) {
		t.Fatalf("CountMonomials = %d, want %d", count, len(want))
	}
}

func TestValueBasics(t *testing.T) {
	if !Zero().Empty() || One().Empty() || Gen("g").Empty() {
		t.Errorf("emptiness of basic values broken")
	}
	if m, ok := One().Cursor().Next(); !ok || len(m) != 0 {
		t.Errorf("One cursor should yield the empty monomial")
	}
	if _, ok := Zero().Cursor().Next(); ok {
		t.Errorf("Zero cursor should be empty")
	}
	if m, ok := Gen("g").Cursor().Next(); !ok || m.Key() != "g" {
		t.Errorf("Gen cursor should yield its generator")
	}
	if Bool(true).Empty() || !Bool(false).Empty() {
		t.Errorf("Bool values broken")
	}
	p := provenance.FromMonomials(provenance.NewMonomial("a"), provenance.NewMonomial("a", "b"))
	v := FromPoly(p)
	cur := v.Cursor()
	count := 0
	for {
		if _, ok := cur.Next(); !ok {
			break
		}
		count++
	}
	if count != 2 {
		t.Errorf("FromPoly cursor yielded %d monomials, want 2", count)
	}
}

// TestPermCursorDirect exercises the permanent-gate cursor on hand-built
// circuits against explicit evaluation.
func TestPermCursorDirect(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		rows := r.Intn(3) + 1
		cols := r.Intn(5) + 1
		c := circuit.NewBuilder()
		var entries []circuit.PermEntry
		inputs := map[structure.WeightKey]Value{}
		for col := 0; col < cols; col++ {
			for row := 0; row < rows; row++ {
				switch r.Intn(3) {
				case 0:
					// absent entry
				case 1:
					k := key("w", row, col)
					inputs[k] = Gen(provenance.Generator(k.Tuple))
					entries = append(entries, circuit.PermEntry{Row: row, Col: col, Gate: c.Input(k)})
				default:
					k := key("p", row, col)
					inputs[k] = FromPoly(provenance.FromMonomials(
						provenance.NewMonomial(provenance.Generator("x"+k.Tuple)),
						provenance.NewMonomial(provenance.Generator("y"+k.Tuple)),
					))
					entries = append(entries, circuit.PermEntry{Row: row, Col: col, Gate: c.Input(k)})
				}
			}
		}
		c.SetOutput(c.Perm(rows, cols, entries))
		lookup := func(k structure.WeightKey) Value { return inputs[k] }
		checkEnumeratorAgainstExplicit(t, c, lookup)
	}
}

func TestAddMulConstCursors(t *testing.T) {
	c := circuit.NewBuilder()
	a := c.Input(key("a", 0))
	b := c.Input(key("b", 0))
	d := c.Input(key("d", 0))
	sum := c.Add(a, b, d, b) // b occurs twice: multiplicity 2
	prod := c.Mul(sum, a)
	c.SetOutput(c.Add(prod, c.ConstInt(3), c.Mul(b, d)))
	inputs := map[structure.WeightKey]Value{
		key("a", 0): Gen("a"),
		key("b", 0): Gen("b"),
		key("d", 0): Zero(),
	}
	lookup := func(k structure.WeightKey) Value { return inputs[k] }
	checkEnumeratorAgainstExplicit(t, c, lookup)
}

func enumerationStructure(n, m int, seed int64) *structure.Structure {
	sig := structure.MustSignature(
		[]structure.RelSymbol{{Name: "E", Arity: 2}, {Name: "S", Arity: 1}},
		nil,
	)
	r := rand.New(rand.NewSource(seed))
	a := structure.NewStructure(sig, n)
	for len(a.Tuples("E")) < m {
		x, y := r.Intn(n), r.Intn(n)
		if x != y {
			a.MustAddTuple("E", x, y)
		}
	}
	for v := 0; v < n; v++ {
		if r.Intn(2) == 0 {
			a.MustAddTuple("S", v)
		}
	}
	return a
}

// sortTuples sorts answer tuples lexicographically for comparison.
func sortTuples(ts []structure.Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Key()
	}
	sort.Strings(out)
	return out
}

// checkAnswers compares the enumerated answers with the naive materialised
// answer set: same set, no duplicates.
func checkAnswers(t *testing.T, ans *Answers, a *structure.Structure, phi logic.Formula, vars []string) {
	t.Helper()
	got := sortTuples(ans.Collect(0))
	want := sortTuples(logic.Answers(phi, a, vars))
	if !equalStringSlices(got, want) {
		t.Fatalf("enumerated answers differ from naive answers for %s:\n got (%d) %v\nwant (%d) %v",
			phi, len(got), got, len(want), want)
	}
	for i := 1; i < len(got); i++ {
		if got[i] == got[i-1] {
			t.Fatalf("duplicate answer %v enumerated for %s", got[i], phi)
		}
	}
	if ans.Count() != int64(len(want)) {
		t.Fatalf("Count() = %d, want %d", ans.Count(), len(want))
	}
	if ans.Empty() != (len(want) == 0) {
		t.Fatalf("Empty() inconsistent with answer count")
	}
}

func TestEnumerateAnswersStatic(t *testing.T) {
	a := enumerationStructure(10, 24, 7)
	cases := []struct {
		phi  logic.Formula
		vars []string
	}{
		{logic.R("E", "x", "y"), []string{"x", "y"}},
		{logic.Conj(logic.R("E", "x", "y"), logic.R("E", "y", "z")), []string{"x", "y", "z"}},
		{logic.Conj(logic.R("E", "x", "y"), logic.Neg(logic.R("E", "y", "x"))), []string{"x", "y"}},
		{logic.Conj(logic.R("S", "x"), logic.R("S", "y"), logic.Neg(logic.Equal("x", "y")), logic.Neg(logic.R("E", "x", "y"))), []string{"x", "y"}},
		{logic.Conj(logic.R("E", "x", "y"), logic.R("E", "y", "z"), logic.R("E", "z", "x")), []string{"x", "y", "z"}},
		{logic.R("S", "x"), []string{"x"}},
		// A formula with a guarded quantifier.
		{logic.Conj(logic.R("S", "x"), logic.Ex([]string{"y"}, logic.Conj(logic.R("E", "x", "y"), logic.R("S", "y")))), []string{"x"}},
		// Answer variables beyond the formula's free variables (cartesian
		// padding).
		{logic.R("S", "x"), []string{"x", "y"}},
	}
	for _, cse := range cases {
		ans, err := EnumerateAnswers(a, cse.phi, cse.vars, compile.Options{})
		if err != nil {
			t.Fatalf("EnumerateAnswers(%s): %v", cse.phi, err)
		}
		checkAnswers(t, ans, a, cse.phi, cse.vars)
	}
}

func TestEnumerateAnswersRejectsUnknownVariables(t *testing.T) {
	a := enumerationStructure(5, 8, 1)
	if _, err := EnumerateAnswers(a, logic.R("E", "x", "y"), []string{"x"}, compile.Options{}); err == nil {
		t.Errorf("free variable not listed among answer variables should be rejected")
	}
}

func TestEnumerateAnswersDynamic(t *testing.T) {
	a := enumerationStructure(9, 20, 13)
	phi := logic.Conj(logic.R("E", "x", "y"), logic.Neg(logic.R("E", "y", "x")))
	vars := []string{"x", "y"}
	ans, err := EnumerateAnswers(a, phi, vars, compile.Options{DynamicRelations: []string{"E"}})
	if err != nil {
		t.Fatalf("EnumerateAnswers: %v", err)
	}
	mirror := a.Clone()
	checkAnswers(t, ans, mirror, phi, vars)

	r := rand.New(rand.NewSource(17))
	edges := append([]structure.Tuple(nil), a.Tuples("E")...)
	for step := 0; step < 25; step++ {
		base := edges[r.Intn(len(edges))]
		target := base
		if r.Intn(2) == 0 {
			target = structure.Tuple{base[1], base[0]}
		}
		present := r.Intn(2) == 0
		if err := ans.SetTuple("E", target, present); err != nil {
			t.Fatalf("SetTuple: %v", err)
		}
		setMirror(mirror, "E", target, present)
		if ans.HasTuple("E", target) != present {
			t.Fatalf("HasTuple does not reflect update")
		}
		checkAnswers(t, ans, mirror, phi, vars)
	}
	// Unary predicate updates (the local-search use case, Example 25).
	phiS := logic.Conj(logic.R("S", "x"), logic.Ex([]string{"y"}, logic.R("E", "x", "y")))
	_ = phiS
	// Gaifman-violating insertion is rejected.
	g := a.Gaifman()
	for i := 0; i < a.N; i++ {
		for j := 0; j < a.N; j++ {
			if i != j && !g.HasEdge(i, j) {
				if err := ans.SetTuple("E", structure.Tuple{i, j}, true); err == nil {
					t.Fatalf("Gaifman-violating insertion accepted")
				}
				i = a.N
				break
			}
		}
	}
	// Updating a non-dynamic relation is rejected.
	if err := ans.SetTuple("S", structure.Tuple{0}, true); err == nil {
		t.Errorf("non-dynamic relation update accepted")
	}
}

func TestEnumerateUnaryDynamicPredicate(t *testing.T) {
	// Dynamic unary predicate S: answers to S(x) ∧ ∃-free neighbourhood
	// conditions track insertions and deletions of S-memberships, the update
	// pattern used by the local-search application (Example 25).
	a := enumerationStructure(8, 16, 23)
	phi := logic.Conj(logic.R("S", "x"), logic.R("E", "x", "y"), logic.Neg(logic.R("S", "y")))
	vars := []string{"x", "y"}
	ans, err := EnumerateAnswers(a, phi, vars, compile.Options{DynamicRelations: []string{"S"}})
	if err != nil {
		t.Fatalf("EnumerateAnswers: %v", err)
	}
	mirror := a.Clone()
	checkAnswers(t, ans, mirror, phi, vars)
	r := rand.New(rand.NewSource(29))
	for step := 0; step < 20; step++ {
		v := r.Intn(a.N)
		present := r.Intn(2) == 0
		if err := ans.SetTuple("S", structure.Tuple{v}, present); err != nil {
			t.Fatalf("SetTuple: %v", err)
		}
		setMirror(mirror, "S", structure.Tuple{v}, present)
		checkAnswers(t, ans, mirror, phi, vars)
	}
}

// setMirror rebuilds the mirror structure with the tuple present or absent.
func setMirror(a *structure.Structure, rel string, tuple structure.Tuple, present bool) {
	fresh := structure.NewStructure(a.Sig, a.N)
	for _, r := range a.Sig.Relations {
		for _, t := range a.Tuples(r.Name) {
			if r.Name == rel && t.Equal(tuple) {
				continue
			}
			fresh.MustAddTuple(r.Name, t...)
		}
	}
	if present {
		fresh.MustAddTuple(rel, tuple...)
	}
	*a = *fresh
}

func TestCursorIsIncremental(t *testing.T) {
	// The cursor must be able to produce a prefix of the answers without
	// enumerating everything (spot check that Next is usable lazily).
	a := enumerationStructure(30, 80, 31)
	ans, err := EnumerateAnswers(a, logic.R("E", "x", "y"), []string{"x", "y"}, compile.Options{})
	if err != nil {
		t.Fatalf("EnumerateAnswers: %v", err)
	}
	cur := ans.Cursor()
	seen := 0
	for seen < 5 {
		tpl, ok := cur.Next()
		if !ok {
			break
		}
		if !a.HasTuple("E", tpl...) {
			t.Fatalf("enumerated non-answer %v", tpl)
		}
		seen++
	}
	if seen == 0 && len(a.Tuples("E")) > 0 {
		t.Fatalf("no answers enumerated")
	}
}

func TestProvenanceOfTriangles(t *testing.T) {
	// Example 21 of the paper: the provenance of the triangle query at a
	// node is the sum of products of its triangles' edge identifiers.
	sig := structure.MustSignature(
		[]structure.RelSymbol{{Name: "E", Arity: 2}},
		[]structure.WeightSymbol{{Name: "w", Arity: 2}},
	)
	a := structure.NewStructure(sig, 4)
	edges := [][2]int{{0, 1}, {1, 2}, {2, 0}, {1, 3}, {3, 0}}
	for _, e := range edges {
		a.MustAddTuple("E", e[0], e[1])
	}
	// f = Σ_{x,y,z} [E(x,y) ∧ E(y,z) ∧ E(z,x)] · w(x,y) · w(y,z) · w(z,x)
	f := expr.Agg([]string{"x", "y", "z"}, expr.Times(
		expr.Guard(logic.Conj(logic.R("E", "x", "y"), logic.R("E", "y", "z"), logic.R("E", "z", "x"))),
		expr.W("w", "x", "y"), expr.W("w", "y", "z"), expr.W("w", "z", "x"),
	))
	res, err := compile.Compile(a, f, compile.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	inputs := func(k structure.WeightKey) Value {
		if k.Weight != "w" {
			return Zero()
		}
		tpl := structure.ParseTupleKey(k.Tuple)
		if !a.HasTuple("E", tpl...) {
			return Zero()
		}
		return Gen(provenance.Generator("e" + k.Tuple))
	}
	e := New(res.Circuit, inputs)
	got := monomialMultiset(e.CollectAll(0))
	// The graph has two directed triangles 0→1→2→0 and 0→1→3→0; each is
	// counted three times (once per starting vertex).
	want := polyMultiset(EvaluateExplicit(res.Circuit, inputs))
	if !equalStringSlices(got, want) {
		t.Fatalf("triangle provenance mismatch:\n got %v\nwant %v", got, want)
	}
	if len(got) != 6 {
		t.Fatalf("expected 6 monomials (2 triangles × 3 rotations), got %d: %v", len(got), got)
	}
}
