// Snapshot reads through the repro/agg facade: sessions version their gate
// values by epoch (MVCC), so point reads never wait on writes and never fail
// busy — a read pins the last committed epoch, answers from it, and lets the
// writer keep committing.  Session.Snapshot goes further and hands out a
// Reader pinned at one epoch for as long as the caller needs: a consistent
// view for multi-read transactions, reports, or streaming enumeration while
// the session keeps moving underneath.
//
//	go run ./examples/snapshotreads
package main

import (
	"context"
	"fmt"
	"sync"

	"repro/agg"
)

func main() {
	ctx := context.Background()

	eng, err := agg.OpenSource(agg.Source{Kind: "pref-attach", N: 2000, Degree: 2, Seed: 7})
	if err != nil {
		panic(err)
	}
	db := eng.Database()
	fmt.Printf("database: %d elements, %d tuples\n", db.Elements(), db.TupleCount())

	// A point query with one free variable: weighted 2-paths out of x.
	p, err := eng.Prepare(ctx, "sum y, z . [E(x,y) & E(y,z) & !(x = z)] * u(y) * u(z)")
	if err != nil {
		panic(err)
	}
	s, err := p.Session()
	if err != nil {
		panic(err)
	}
	defer s.Close()

	// --- Reads never wait on writes ---------------------------------------
	//
	// A writer streams weight updates while a reader issues point queries.
	// Updates serialise against each other (a concurrent Set would fail fast
	// with ErrSessionBusy), but every Eval below answers from a snapshot of
	// the last committed epoch: no queueing, no busy errors.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			if err := s.Set(agg.SetWeight("u", []int{i % db.Elements()}, int64(i%9+1))); err != nil {
				panic(err)
			}
		}
	}()
	busy := 0
	for i := 0; i < 200; i++ {
		if _, err := s.Eval(ctx, i%db.Elements()); err != nil {
			busy++
		}
	}
	wg.Wait()
	fmt.Printf("200 point reads during a 500-update stream: %d failures\n", busy)

	// --- A Reader pins one epoch ------------------------------------------
	//
	// Snapshot freezes the session's current epoch.  Later commits advance
	// the live session but the Reader keeps answering from its pinned epoch;
	// the undo history needed to reconstruct it is retained until Close.
	r, err := s.Snapshot()
	if err != nil {
		panic(err)
	}
	// Edges point from new vertices to old ones, so the last vertex has
	// outgoing 2-paths; bumping the weight of one of its successors moves
	// the live value while the pinned Reader stays put.
	x := db.Elements() - 1
	var succ int
	for _, e := range db.Tuples("E") {
		if e[0] == x {
			succ = e[1]
			break
		}
	}
	pinned, _ := r.Eval(ctx, x)
	live, _ := s.Eval(ctx, x)
	fmt.Printf("epoch %d pinned: reader f(x)=%s, live f(x)=%s\n", r.Epoch(), pinned, live)

	if err := s.Set(agg.SetWeight("u", []int{succ}, 1000)); err != nil {
		panic(err)
	}
	pinnedAfter, _ := r.Eval(ctx, x)
	liveAfter, _ := s.Eval(ctx, x)
	fmt.Printf("after one more commit (epoch %d): reader f(x)=%s (unchanged), live f(x)=%s\n",
		s.Epoch(), pinnedAfter, liveAfter)
	if pinnedAfter != pinned {
		panic("pinned reader moved")
	}
	fmt.Printf("undo history retained for the reader: %d bytes\n", s.RetainedUndoBytes())

	// Closing the last reader lets the session truncate the history: the
	// writer's steady state with no readers is allocation-free again.
	r.Close()
	fmt.Printf("after closing the reader: %d bytes retained\n", s.RetainedUndoBytes())
}
