// Provenance analysis (Section 5 / Example 21 of the paper): evaluate the
// triangle query in the free (provenance) semiring, where every edge carries
// a unique named generator, then rebind the very same frozen circuit to
// other carriers — the universal property of the free semiring means each
// rebinding computes the corresponding homomorphic image of the provenance.
// Everything runs through the public facade and the semiring registry.
//
//	go run ./examples/provenance
package main

import (
	"context"
	"fmt"
	"strings"

	"repro/agg"
	"repro/internal/provenance"
	"repro/internal/semiring"
)

// The 4-vertex graph of Example 21: edges ab, bc, ca, bd, da.
var (
	names = []string{"a", "b", "c", "d"}
	edges = [][2]int{{0, 1}, {1, 2}, {2, 0}, {1, 3}, {3, 0}}
)

// edgeName maps the tuple (x, y) to the generator name e_{xy}.
func edgeName(t []int) string { return "e" + names[t[0]] + names[t[1]] }

func main() {
	ctx := context.Background()
	var b strings.Builder
	b.WriteString("domain 4\nrel E 2\nwsym w 2\n")
	for _, e := range edges {
		fmt.Fprintf(&b, "E %d %d\nw %d %d 1\n", e[0], e[1], e[0], e[1])
	}
	eng, err := agg.OpenReader(strings.NewReader(b.String()))
	must(err)

	// Each edge weight is the formal generator e_{xy} of the free semiring;
	// the other carriers below are its homomorphic images.
	must(agg.Register(agg.NewSemiring[*provenance.Poly]("edge-prov", provenance.Free,
		func(_ string, t []int, _ int64) *provenance.Poly {
			return provenance.Var(provenance.Generator(edgeName(t)))
		})))
	must(agg.Register(agg.NewSemiring[int64]("edge-count", semiring.Nat,
		func(string, []int, int64) int64 { return 1 })))
	costs := map[string]int64{"eab": 1, "ebc": 4, "eca": 2, "ebd": 1, "eda": 1}
	must(agg.Register(agg.NewSemiring[semiring.Ext]("edge-cost", semiring.MinPlus,
		func(_ string, t []int, _ int64) semiring.Ext { return semiring.Fin(costs[edgeName(t)]) })))
	must(agg.Register(agg.NewSemiring[bool]("without-bc", semiring.Bool,
		func(_ string, t []int, _ int64) bool { return edgeName(t) != "ebc" })))

	// f = Σ_{x,y,z} [triangle(x,y,z)] · w(x,y) · w(y,z) · w(z,x), prepared
	// once in the free semiring.
	p, err := eng.Prepare(ctx,
		"sum x, y, z . [E(x,y) & E(y,z) & E(z,x)] * w(x,y) * w(y,z) * w(z,x)",
		agg.WithSemiring("edge-prov"))
	must(err)

	poly, err := p.Eval(ctx)
	must(err)
	fmt.Println("derivations of the triangle query (each triangle appears once per rotation):")
	for _, m := range strings.Split(poly.String(), " + ") {
		fmt.Printf("  %s\n", m)
	}

	// The universal property: the same circuit under homomorphic carriers.
	count, err := evalIn(ctx, p, "edge-count")
	must(err)
	fmt.Printf("\ncounting homomorphism (every edge ↦ 1):        %s derivations\n", count)
	cheapest, err := evalIn(ctx, p, "edge-cost")
	must(err)
	fmt.Printf("min-cost homomorphism (edge costs %v): %s\n", costs, cheapest)
	without, err := evalIn(ctx, p, "without-bc")
	must(err)
	fmt.Printf("does any triangle survive deleting edge bc?     %s\n", without)
}

// evalIn rebinds the prepared query to the named carrier and evaluates it —
// no recompilation, the frozen circuit is shared.
func evalIn(ctx context.Context, p *agg.Prepared, carrier string) (agg.Value, error) {
	q, err := p.In(carrier)
	if err != nil {
		return "", err
	}
	return q.Eval(ctx)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
