package dbio

import (
	"fmt"
	"io"
	"os"

	"repro/internal/workload"
)

// Source describes where a database comes from: an explicit reader, stdin, a
// file in the dbio text format, or a generated synthetic workload.  It is the
// shared backing of the -stdin/-file/-kind/-n flags of the command-line
// tools and of the databases mounted by cmd/aggserve.
type Source struct {
	// Reader, when non-nil, takes precedence over every other field.
	Reader io.Reader
	// Stdin reads the database from os.Stdin.
	Stdin bool
	// Path reads the database from the named file.
	Path string

	// Kind selects a generated workload (bounded-degree, grid, forest,
	// pref-attach, road, nested, search) when no reader, stdin or path is
	// given.
	Kind string
	// N is the approximate number of elements of the generated database.
	N int
	// Degree is the degree / branching / attachment parameter; 0 selects the
	// per-kind default (3 for bounded-degree and forest, 2 for pref-attach).
	Degree int
	// Seed is the random seed of the generator.
	Seed int64
}

// Generate builds the synthetic workload described by Kind/N/Degree/Seed.
func (src Source) Generate() (*workload.Database, error) {
	n := src.N
	side := 1
	for side*side < n {
		side++
	}
	switch src.Kind {
	case "bounded-degree":
		return workload.BoundedDegree(n, src.degreeOr(3), src.Seed), nil
	case "grid":
		return workload.Grid(side, side, src.Seed), nil
	case "forest":
		return workload.Forest(n, src.degreeOr(3), src.Seed), nil
	case "pref-attach":
		return workload.PreferentialAttachment(n, src.degreeOr(2), src.Seed), nil
	case "road":
		return workload.RoadNetwork(side, side, n/10, src.Seed), nil
	case "nested":
		return workload.NestedAgg(n, src.degreeOr(3), src.Seed), nil
	case "search":
		return workload.Search(n, src.degreeOr(3), src.Seed), nil
	default:
		return nil, fmt.Errorf("dbio: unknown workload kind %q (available: bounded-degree, grid, forest, pref-attach, road, nested, search)", src.Kind)
	}
}

func (src Source) degreeOr(def int) int {
	if src.Degree > 0 {
		return src.Degree
	}
	return def
}

// LoadSource loads a database from the described source.  Readers, stdin and
// files are parsed in the dbio text format; otherwise the workload generator
// selected by Kind runs.
func LoadSource(src Source) (*Database, error) {
	switch {
	case src.Reader != nil:
		return Read(src.Reader)
	case src.Stdin:
		return Read(os.Stdin)
	case src.Path != "":
		return ReadFile(src.Path)
	default:
		db, err := src.Generate()
		if err != nil {
			return nil, err
		}
		return &Database{A: db.A, W: db.Weights()}, nil
	}
}
