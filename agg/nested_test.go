package agg

import (
	"context"
	"errors"
	"testing"
)

// outWeight is Σ_y [E(x,y)]·w(x,y): the outgoing edge weight of x.
func outWeight() *Nested {
	return NSum([]string{"y"}, NTimes(NBracket(NAtom("E", "x", "y")), NWeight("w", "x", "y")))
}

func TestNestedEvalClosed(t *testing.T) {
	eng := testEngine(t)
	ctx := context.Background()

	// Σ_{x,y} [E(x,y)]·w(x,y) — same aggregate as the flat edgeSum query.
	q := NSum([]string{"x", "y"},
		NTimes(NBracket(NAtom("E", "x", "y")), NWeight("w", "x", "y")))
	p, err := eng.Prepare(ctx, "nested edge sum", WithNested(q))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if got, err := p.Eval(ctx); err != nil || got != "11" {
		t.Fatalf("nested edge sum = %q, %v; want 11", got, err)
	}
	if p.Enumerable() {
		t.Error("semiring-valued nested query reports Enumerable")
	}
	if fv := p.FreeVars(); len(fv) != 0 {
		t.Errorf("closed query FreeVars = %v", fv)
	}

	// Flat and nested agree.
	flat, err := eng.Prepare(ctx, edgeSum)
	if err != nil {
		t.Fatalf("Prepare flat: %v", err)
	}
	fv, err := flat.Eval(ctx)
	if err != nil {
		t.Fatalf("flat Eval: %v", err)
	}
	nv, err := p.Eval(ctx)
	if err != nil {
		t.Fatalf("nested Eval: %v", err)
	}
	if fv != nv {
		t.Errorf("flat %q != nested %q", fv, nv)
	}
}

func TestNestedEvalFreeVars(t *testing.T) {
	eng := testEngine(t)
	ctx := context.Background()

	p, err := eng.Prepare(ctx, "out-weight", WithNested(outWeight()))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if fv := p.FreeVars(); len(fv) != 1 || fv[0] != "x" {
		t.Fatalf("FreeVars = %v; want [x]", fv)
	}
	// Out-weights on the test graph: 0→1:2, 1→2:3, 2→{0,3}:5+1=6, 3:0.
	for x, want := range map[int]string{0: "2", 1: "3", 2: "6", 3: "0"} {
		if got, err := p.Eval(ctx, x); err != nil || string(got) != want {
			t.Errorf("outWeight(%d) = %q, %v; want %s", x, got, err, want)
		}
	}
	// Arity mismatch surfaces as ErrArgument.
	if _, err := p.Eval(ctx); !errors.Is(err, ErrArgument) {
		t.Errorf("Eval() error = %v; want ErrArgument", err)
	}
}

func TestNestedBooleanEnumerate(t *testing.T) {
	eng := testEngine(t)
	ctx := context.Background()

	// [S(x)]·(outWeight(x) > 3): marked vertices of out-weight above 3.
	q := NGuard("S", []string{"x"}, ConnGreaterThan, outWeight(), NConst(3))
	p, err := eng.Prepare(ctx, "heavy marked", WithNested(q))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if !p.Enumerable() {
		t.Fatal("boolean nested query with a free variable is not Enumerable")
	}
	n, err := p.AnswerCount(ctx)
	if err != nil {
		t.Fatalf("AnswerCount: %v", err)
	}
	if n != 1 {
		t.Errorf("AnswerCount = %d; want 1", n)
	}
	var got []int
	for ans, err := range p.Enumerate(ctx) {
		if err != nil {
			t.Fatalf("Enumerate: %v", err)
		}
		if len(ans) != 1 {
			t.Fatalf("answer arity %d; want 1", len(ans))
		}
		got = append(got, ans[0])
	}
	// S = {0, 2}; outWeight(0)=2, outWeight(2)=6 — only 2 qualifies.
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("answers = %v; want [2]", got)
	}
	// Point evaluation agrees with the answer set.
	for x, want := range map[int]string{0: "false", 2: "true", 3: "false"} {
		if got, err := p.Eval(ctx, x); err != nil || string(got) != want {
			t.Errorf("heavy(%d) = %q, %v; want %s", x, got, err, want)
		}
	}
}

func TestNestedSession(t *testing.T) {
	eng := testEngine(t)
	ctx := context.Background()

	q := NSum([]string{"x", "y"},
		NTimes(NBracket(NAtom("E", "x", "y")), NWeight("w", "x", "y")))
	p, err := eng.Prepare(ctx, "nested edge sum", WithNested(q))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	s, err := p.Session()
	if err != nil {
		t.Fatalf("Session: %v", err)
	}
	defer s.Close()

	// w(0,1): 2 → 7 lifts the total from 11 to 16.
	if err := s.Set(Change{Weight: "w", Tuple: []int{0, 1}, Value: 7}); err != nil {
		t.Fatalf("Set weight: %v", err)
	}
	if got, err := s.Eval(ctx); err != nil || got != "16" {
		t.Fatalf("after weight update = %q, %v; want 16", got, err)
	}
	// Dropping edge (2,3) removes its weight-1 contribution.
	if err := s.Set(Change{Rel: "E", Tuple: []int{2, 3}, Present: false}); err != nil {
		t.Fatalf("Set tuple: %v", err)
	}
	if got, err := s.Eval(ctx); err != nil || got != "15" {
		t.Fatalf("after edge removal = %q, %v; want 15", got, err)
	}
	// Inserting a fresh edge counts its (zero-defaulted, then set) weight.
	if err := s.ApplyBatch([]Change{
		{Rel: "E", Tuple: []int{3, 0}, Present: true},
		{Weight: "w", Tuple: []int{3, 0}, Value: 4},
	}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got, err := s.Eval(ctx); err != nil || got != "19" {
		t.Fatalf("after batch = %q, %v; want 19", got, err)
	}
	// A bad change in a batch rejects the whole batch.
	if err := s.ApplyBatch([]Change{
		{Rel: "E", Tuple: []int{0, 3}, Present: true},
		{Rel: "Nope", Tuple: []int{0}, Present: true},
	}); !errors.Is(err, ErrUpdate) {
		t.Fatalf("bad batch error = %v; want ErrUpdate", err)
	}
	if got, err := s.Eval(ctx); err != nil || got != "19" {
		t.Fatalf("after rejected batch = %q, %v; want 19 (unchanged)", got, err)
	}

	// The prepared query itself is unaffected by session mutations.
	if got, err := p.Eval(ctx); err != nil || got != "11" {
		t.Fatalf("base query after session updates = %q, %v; want 11", got, err)
	}
}

func TestNestedConnectiveErrors(t *testing.T) {
	eng := testEngine(t)
	ctx := context.Background()

	// GreaterThan needs two arguments.
	if _, err := eng.Prepare(ctx, "bad arity",
		WithNested(NGuard("S", []string{"x"}, ConnGreaterThan, outWeight()))); !errors.Is(err, ErrCompile) {
		t.Errorf("one-argument > error = %v; want ErrCompile", err)
	}
	// Free variables of connective arguments must be guard variables.
	if _, err := eng.Prepare(ctx, "unbound",
		WithNested(NGuard("S", []string{"z"}, ConnGreaterThan, outWeight(), NConst(3)))); !errors.Is(err, ErrCompile) {
		t.Errorf("unbound-variable error = %v; want ErrCompile", err)
	}
	// Provenance polynomials are unordered; comparisons must be rejected.
	if _, err := eng.Prepare(ctx, "unordered", WithSemiring("provenance"),
		WithNested(NGuard("S", []string{"x"}, ConnGreaterThan, outWeight(), NConst(3)))); !errors.Is(err, ErrCompile) {
		t.Errorf("unordered-semiring error = %v; want ErrCompile", err)
	}
	// Nested mode fixes its carrier at Prepare: In() refuses to rebind.
	p, err := eng.Prepare(ctx, "edge sum", WithNested(NSum([]string{"x", "y"},
		NTimes(NBracket(NAtom("E", "x", "y")), NWeight("w", "x", "y")))))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if _, err := p.In("minplus"); !errors.Is(err, ErrArgument) {
		t.Errorf("In on nested query error = %v; want ErrArgument", err)
	}
}

func TestNestedMaxPlusRatio(t *testing.T) {
	eng := testEngine(t)
	ctx := context.Background()

	// max over marked x of ⌊outWeight(x)/u(x)⌋, through toMaxPlus:
	// x=0: ⌊2/1⌋ = 2;  x=2: ⌊6/3⌋ = 2 → max = 2.
	ratio := NGuard("S", []string{"x"}, ConnRatio, outWeight(), NWeight("u", "x"))
	q := NSum([]string{"x"}, NGuard("S", []string{"x"}, ConnToMaxPlus, ratio))
	p, err := eng.Prepare(ctx, "max ratio", WithNested(q))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	got, err := p.Eval(ctx)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if got != "2" {
		t.Errorf("max ratio = %q; want 2", got)
	}
}
