// Knowledge-compilation view of the compiled circuits: the circuits of
// Theorem 6 are decomposable (products combine disjoint inputs) and — for
// the enumeration construction of Theorem 24 — deterministic (no answer is
// produced twice), which is why counting and constant-delay enumeration
// work.  This example compiles a query, verifies both properties with
// internal/kc, counts its answers, reports how much smaller the factorized
// (circuit) representation is than the flat answer table, and prints a
// Graphviz rendering of a small circuit.
//
//	go run ./examples/knowledge
package main

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/expr"
	"repro/internal/kc"
	"repro/internal/logic"
	"repro/internal/workload"
)

func main() {
	db := workload.BoundedDegree(2000, 3, 21)
	fmt.Printf("database: %d vertices, %d tuples\n", db.A.N, db.A.TupleCount())

	// Σ_{x,y,z} [E(x,y) ∧ E(y,z) ∧ x≠z] · u(x) · w(y,z): one monomial per
	// directed path of length two.
	paths := expr.Agg([]string{"x", "y", "z"}, expr.Times(
		expr.Guard(logic.Conj(logic.R("E", "x", "y"), logic.R("E", "y", "z"), logic.Neg(logic.Equal("x", "z")))),
		expr.W("u", "x"), expr.W("w", "y", "z"),
	))
	res, err := compile.Compile(db.A, paths, compile.Options{})
	if err != nil {
		panic(err)
	}

	analysis := kc.Analyze(res.Circuit)
	fmt.Printf("circuit: %d gates over %d weight inputs\n",
		res.Circuit.NumGates(), len(analysis.Variables()))

	if v := analysis.CheckDecomposable(); len(v) == 0 {
		fmt.Println("decomposable: yes (products combine disjoint inputs)")
	} else {
		fmt.Printf("decomposable: NO — %s\n", v[0])
	}
	if v := analysis.CheckDeterministic(); len(v) == 0 {
		fmt.Println("deterministic: yes (no monomial is produced twice)")
	} else {
		fmt.Printf("deterministic: NO — %s\n", v[0])
	}

	report := kc.Factorization(res.Circuit, 3)
	fmt.Printf("answers (model count):     %s\n", report.Answers)
	fmt.Printf("flat table cells:          %s\n", report.FlatCells)
	fmt.Printf("circuit size (gates+edges): %d\n", report.CircuitSize)
	fmt.Printf("compression ratio:          %.1f×\n", report.CompressionRatio)

	// Render a small circuit so the DOT output stays readable.
	tiny := workload.BoundedDegree(12, 2, 3)
	tinyRes, err := compile.Compile(tiny.A, expr.Agg([]string{"x", "y"}, expr.Times(
		expr.Guard(logic.R("E", "x", "y")), expr.W("u", "x"), expr.W("u", "y"),
	)), compile.Options{})
	if err != nil {
		panic(err)
	}
	dot := kc.DOT(tinyRes.Circuit)
	fmt.Printf("\nGraphviz rendering of a small edge-query circuit (%d gates):\n", tinyRes.Circuit.NumGates())
	if len(dot) > 1200 {
		fmt.Println(dot[:1200] + "  ... (truncated)")
	} else {
		fmt.Println(dot)
	}
}
