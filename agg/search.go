package agg

import (
	"context"
	"sync"

	"repro/internal/enumerate"
	"repro/internal/structure"
)

// Searcher drives local search in the style of Example 25 of the paper: a
// formula query prepared with WithDynamic describes a possible improvement of
// the current solution, FindImprovement returns one such improvement in
// constant time, and Apply commits a round of Gaifman-preserving tuple
// updates with a single propagation wave over the frozen program.  A locally
// optimal solution is therefore reached in time linear in the number of
// rounds, after the one-off Prepare.
//
// Each Searcher owns an independent copy of the dynamic enumeration state, so
// any number of searches (with different update sequences) run concurrently
// from one Prepared, which itself never changes.  A Searcher's own methods
// are serialised by an internal lock.
type Searcher struct {
	p *Prepared

	mu     sync.Mutex
	ans    *enumerate.Answers
	rounds int
}

// Search opens a local-search driver over an enumerable query whose dynamic
// relations were declared with WithDynamic.  The Prepared's own answer set is
// unaffected by the search; opening costs one linear pass over the shared
// frozen program to copy the dynamic state.
func (p *Prepared) Search() (*Searcher, error) {
	if p.enum == nil {
		return nil, errorf(ErrNotEnumerable, p.text, "Search needs a first-order improvement formula with free variables; expression queries have no answer set")
	}
	if len(p.enum.ans.Result().DynamicRelations) == 0 {
		return nil, errorf(ErrArgument, p.text, "Search needs updatable relations; prepare the improvement query with WithDynamic(...)")
	}
	return &Searcher{p: p, ans: p.enum.ans.Clone()}, nil
}

// FindImprovement returns one answer of the improvement query for the
// current solution, or ok=false when the solution is locally optimal.
func (s *Searcher) FindImprovement() (Answer, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.ans.Cursor().Next()
	if !ok {
		return nil, false
	}
	s.rounds++
	return Answer(t), true
}

// Apply commits one round of relation updates as a single all-or-nothing
// propagation wave.  Only tuple changes are accepted (local search moves
// tuples, not weights); insertions must preserve the Gaifman graph, which
// always holds for unary predicates.
func (s *Searcher) Apply(changes ...Change) error {
	batch := make([]enumerate.TupleChange, len(changes))
	for i, ch := range changes {
		if ch.Weight != "" || ch.Rel == "" {
			return errorf(ErrUpdate, s.p.text, "local search updates relation tuples; change %d is not a tuple change", i)
		}
		batch[i] = enumerate.TupleChange{Rel: ch.Rel, Tuple: structure.Tuple(ch.Tuple), Present: ch.Present}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ans.ApplyBatch(batch); err != nil {
		return newError(ErrUpdate, s.p.text, err)
	}
	return nil
}

// Rounds reports how many improvements FindImprovement has returned.
func (s *Searcher) Rounds() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rounds
}

// Remaining counts the improvements available for the current solution, by
// evaluating the program in ℕ without enumerating.
func (s *Searcher) Remaining() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ans.Count()
}

// Run loops the search to a local optimum: each round finds one improvement,
// asks step how to change the solution, and commits the returned changes as
// one wave.  It returns the number of rounds performed; the context is
// checked between rounds, so a cancelled search stops in bounded time with
// the context's error.
func (s *Searcher) Run(ctx context.Context, step func(Answer) []Change) (int, error) {
	ctx = ensureCtx(ctx)
	for rounds := 0; ; rounds++ {
		if err := ctx.Err(); err != nil {
			return rounds, err
		}
		ans, ok := s.FindImprovement()
		if !ok {
			return rounds, nil
		}
		if err := s.Apply(step(ans)...); err != nil {
			return rounds, err
		}
	}
}
