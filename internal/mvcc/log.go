// Package mvcc provides the epoch bookkeeping behind snapshot reads over the
// incrementally maintained engines: a commit counter, a per-transition undo
// log, and reader pins that keep just enough history alive to resolve any
// pinned epoch.
//
// The design follows the copy-on-write version chains of factorised-database
// engines: the writer keeps mutating its single current state in place, and
// for every commit made while readers are pinned it records the pre-change
// value of each touched slot ("undo entries" — exactly the wave scratch the
// engines already compute).  A reader pinned at epoch P recovers the value of
// slot g at P as the *first* undo entry for g among the transitions
// P→P+1, …, C−1→C, falling back to the current state when no transition
// touched g.  Once the oldest pin is released, the history before the new
// minimum is truncated and its buffers recycled, so the writer's steady state
// with no readers stays allocation-free.
//
// A Log is not safe for concurrent use; the owning engine serialises access
// (writers exclusively, readers under a shared lock).
package mvcc

// Log is the epoch/undo state for one engine.  E is the undo-entry type
// (typically a slot id plus the pre-change value).  The zero value is ready
// to use; set EntryBytes to the approximate per-entry size so Retained can
// report history memory.
type Log[E any] struct {
	// EntryBytes approximates the in-memory size of one undo entry, used by
	// Retained.  Zero reports entry counts instead of bytes.
	EntryBytes int64

	commit uint64 // current committed epoch C
	base   uint64 // epoch of trans[0]: trans[i] holds the undo entries of transition (base+i) → (base+i+1)
	trans  []*transition[E]
	cur    *transition[E] // entries of the in-progress mutation (commit → commit+1), nil when none logged
	free   []*transition[E]
	pins   map[uint64]int // pinned epoch → reader count
	npins  int
}

type transition[E any] struct{ entries []E }

// maxFreeBuffers bounds the recycled-buffer pool: enough to absorb the
// steady-state churn of a few concurrent transitions without retaining an
// unbounded tail after a burst.
const maxFreeBuffers = 8

// Logging reports whether undo entries must be recorded for the current
// mutation, i.e. whether any reader is pinned.  Writers check this once per
// touched slot; with no readers the answer is false and the mutation path
// does no extra work.
func (l *Log[E]) Logging() bool { return l.npins > 0 }

// Append records one undo entry for the in-progress mutation.  Call only
// when Logging reports true.
func (l *Log[E]) Append(e E) {
	if l.cur == nil {
		l.cur = l.get()
	}
	l.cur.entries = append(l.cur.entries, e)
}

// Commit seals the in-progress mutation as the transition commit → commit+1
// and returns the new committed epoch.  While readers are pinned every
// commit pushes a transition (possibly empty) so transitions stay indexable
// by epoch; with no readers the history is dropped on the spot and the
// counter alone advances.
func (l *Log[E]) Commit() uint64 {
	if l.npins > 0 {
		t := l.cur
		if t == nil {
			t = l.get()
		}
		if len(l.trans) == 0 {
			// Re-anchor: pin-free commits advanced the counter without
			// retaining transitions, so an empty history starts here.
			l.base = l.commit
		}
		l.trans = append(l.trans, t)
		l.cur = nil
		l.commit++
		return l.commit
	}
	if l.cur != nil {
		l.recycle(l.cur)
		l.cur = nil
	}
	l.commit++
	l.truncate()
	return l.commit
}

// Epoch returns the current committed epoch.
func (l *Log[E]) Epoch() uint64 { return l.commit }

// Pins returns the number of outstanding reader pins.
func (l *Log[E]) Pins() int { return l.npins }

// Pin registers a reader at the current committed epoch and returns that
// epoch.  History from the returned epoch on is retained until Unpin.
func (l *Log[E]) Pin() uint64 {
	if l.pins == nil {
		l.pins = make(map[uint64]int)
	}
	l.pins[l.commit]++
	l.npins++
	return l.commit
}

// Unpin releases one reader pin taken at the given epoch and truncates any
// history no remaining pin needs.  Unpinning an epoch that is not pinned
// panics: it indicates a double release.
func (l *Log[E]) Unpin(epoch uint64) {
	n, ok := l.pins[epoch]
	if !ok {
		panic("mvcc: Unpin of an epoch that is not pinned")
	}
	if n == 1 {
		delete(l.pins, epoch)
	} else {
		l.pins[epoch] = n - 1
	}
	l.npins--
	l.truncate()
}

// Walk visits, in commit order, every undo entry of the transitions
// from → from+1, …, C−1 → C and returns C.  Readers use it to extend a
// first-wins digest of their pinned epoch: the first entry seen for a slot
// is its value at any epoch ≤ the transition's from-epoch, in particular at
// the pinned one.  from must be ≥ the oldest pinned epoch (the caller's own
// pin guarantees the history is still there).
func (l *Log[E]) Walk(from uint64, fn func(E)) uint64 {
	for e := from; e < l.commit; e++ {
		for _, entry := range l.trans[e-l.base].entries {
			fn(entry)
		}
	}
	return l.commit
}

// Retained reports the memory held by live undo history, in bytes when
// EntryBytes is set and in entries otherwise.  Recycled buffers waiting in
// the bounded freelist are not counted: they are capped capital, not
// history.
func (l *Log[E]) Retained() int64 {
	per := l.EntryBytes
	if per == 0 {
		per = 1
	}
	var n int64
	for _, t := range l.trans {
		n += int64(cap(t.entries)) * per
	}
	if l.cur != nil {
		n += int64(cap(l.cur.entries)) * per
	}
	return n
}

// truncate drops every transition older than the oldest pin (all of them
// when no pin remains), recycling the buffers.  With no pin left it also
// drops entries parked in the open transition by non-committing operations
// (e.g. override evaluations that restore the state in place).
func (l *Log[E]) truncate() {
	if l.npins == 0 && l.cur != nil {
		l.recycle(l.cur)
		l.cur = nil
	}
	min := l.commit
	for e := range l.pins {
		if e < min {
			min = e
		}
	}
	k := 0
	for k < len(l.trans) && l.base+uint64(k) < min {
		l.recycle(l.trans[k])
		k++
	}
	if k == 0 {
		return
	}
	copy(l.trans, l.trans[k:])
	for i := len(l.trans) - k; i < len(l.trans); i++ {
		l.trans[i] = nil
	}
	l.trans = l.trans[:len(l.trans)-k]
	l.base += uint64(k)
}

func (l *Log[E]) get() *transition[E] {
	if n := len(l.free); n > 0 {
		t := l.free[n-1]
		l.free[n-1] = nil
		l.free = l.free[:n-1]
		return t
	}
	return &transition[E]{}
}

func (l *Log[E]) recycle(t *transition[E]) {
	t.entries = t.entries[:0]
	if len(l.free) < maxFreeBuffers {
		l.free = append(l.free, t)
	}
}
