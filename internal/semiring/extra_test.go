package semiring

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExtraSemiringAxioms(t *testing.T) {
	genUnit := func(r *rand.Rand) float64 { return float64(r.Intn(5)) / 4 }
	axiomChecker[float64](t, "MaxTimes", MaxTimes, genUnit)
	axiomChecker[float64](t, "Fuzzy", Fuzzy, genUnit)
	axiomChecker[float64](t, "Lukasiewicz", Lukasiewicz, genUnit)
	axiomChecker[bool](t, "GF2", GF2, func(r *rand.Rand) bool { return r.Intn(2) == 0 })
	axiomChecker[float64](t, "Bottleneck", Bottleneck, func(r *rand.Rand) float64 {
		switch r.Intn(8) {
		case 0:
			return math.Inf(-1)
		case 1:
			return math.Inf(1)
		default:
			return float64(r.Intn(20) - 10)
		}
	})
	axiomChecker[float64](t, "Log", Log, func(r *rand.Rand) float64 {
		if r.Intn(6) == 0 {
			return math.Inf(-1)
		}
		return float64(r.Intn(9) - 4)
	})

	genCC := func(r *rand.Rand) CostCount {
		if r.Intn(6) == 0 {
			return CostCount{Cost: Infinite}
		}
		return CC(int64(r.Intn(10)), int64(r.Intn(4)+1))
	}
	axiomChecker[CostCount](t, "CountingTropical", CountingTropical, genCC)

	for _, k := range []int{1, 2, 3, 5} {
		kb := NewKBest(k)
		gen := func(r *rand.Rand) []int64 {
			n := r.Intn(k + 2)
			cs := make([]int64, n)
			for i := range cs {
				cs[i] = int64(r.Intn(15))
			}
			return kb.Costs(cs...)
		}
		axiomChecker[[]int64](t, "KBest", kb, gen)
	}

	prod := NewProduct[int64, Ext](Nat, MinPlus)
	axiomChecker[Pair[int64, Ext]](t, "Nat×MinPlus", prod, func(r *rand.Rand) Pair[int64, Ext] {
		p := Pair[int64, Ext]{First: int64(r.Intn(8)), Second: Fin(int64(r.Intn(12)))}
		if r.Intn(5) == 0 {
			p.Second = Infinite
		}
		return p
	})
}

func TestGF2IsRingAndFinite(t *testing.T) {
	if !checkRing[bool](GF2) {
		t.Fatalf("GF2 should satisfy Ring")
	}
	if _, ok := any(GF2).(Finite[bool]); !ok {
		t.Fatalf("GF2 should satisfy Finite")
	}
	if GF2.Add(true, true) != false {
		t.Errorf("1+1 in GF(2) should be 0")
	}
	// a + a = 0 for every element.
	check := func(a bool) bool { return GF2.Equal(GF2.Add(a, GF2.Neg(a)), GF2.Zero()) }
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogSemiringAgreesWithProbability(t *testing.T) {
	// Sum-of-products of probabilities computed in Float and in Log space
	// must agree up to rounding.
	r := rand.New(rand.NewSource(7))
	for round := 0; round < 100; round++ {
		n := r.Intn(6) + 1
		var direct float64
		logAcc := Log.Zero()
		for i := 0; i < n; i++ {
			p := r.Float64()
			q := r.Float64()
			direct += p * q
			logAcc = Log.Add(logAcc, Log.Mul(math.Log(p), math.Log(q)))
		}
		if math.Abs(math.Exp(logAcc)-direct) > 1e-9 {
			t.Fatalf("log-space result %g differs from direct %g", math.Exp(logAcc), direct)
		}
	}
}

func TestCountingTropicalSemantics(t *testing.T) {
	// min(3,5) with the 3 achieved twice.
	a := CC(3, 1)
	b := CC(5, 2)
	c := CC(3, 1)
	sum := CountingTropical.Add(CountingTropical.Add(a, b), c)
	if !CountingTropical.Equal(sum, CC(3, 2)) {
		t.Fatalf("expected cost 3 count 2, got %s", CountingTropical.Format(sum))
	}
	// Multiplication adds costs and multiplies counts.
	prod := CountingTropical.Mul(CC(3, 2), CC(4, 3))
	if !CountingTropical.Equal(prod, CC(7, 6)) {
		t.Fatalf("expected cost 7 count 6, got %s", CountingTropical.Format(prod))
	}
	// Anything times zero is zero.
	z := CountingTropical.Mul(CC(3, 2), CountingTropical.Zero())
	if !CountingTropical.Equal(z, CountingTropical.Zero()) {
		t.Fatalf("zero not absorbing: %s", CountingTropical.Format(z))
	}
}

func TestKBestSemantics(t *testing.T) {
	kb := NewKBest(3)
	a := kb.Costs(5, 1, 9, 2)
	if !kb.Equal(a, []int64{1, 2, 5}) {
		t.Fatalf("Costs should keep the 3 smallest sorted, got %v", a)
	}
	sum := kb.Add(kb.Costs(1, 4), kb.Costs(2, 3, 7))
	if !kb.Equal(sum, []int64{1, 2, 3}) {
		t.Fatalf("Add should merge and keep 3 smallest, got %v", sum)
	}
	prod := kb.Mul(kb.Costs(0, 10), kb.Costs(1, 2))
	if !kb.Equal(prod, []int64{1, 2, 11}) {
		t.Fatalf("Mul should form pairwise sums, got %v", prod)
	}
	if got := kb.Mul(kb.Costs(1), nil); got != nil {
		t.Fatalf("multiplying by zero should give zero, got %v", got)
	}
	if got := kb.Format(kb.Costs(2, 1)); got != "{1,2}" {
		t.Fatalf("Format = %q", got)
	}
	if got := kb.Format(nil); got != "{}" {
		t.Fatalf("Format(zero) = %q", got)
	}
}

func TestKBestDuplicatesKept(t *testing.T) {
	kb := NewKBest(2)
	// Two distinct answers of the same cost are both reported.
	sum := kb.Add(kb.Costs(4), kb.Costs(4))
	if !kb.Equal(sum, []int64{4, 4}) {
		t.Fatalf("duplicate costs should be kept with multiplicity, got %v", sum)
	}
}

func TestBottleneckSemantics(t *testing.T) {
	// Widest path: the value of a product is its weakest edge, the value of
	// a sum is the best alternative.
	path1 := Bottleneck.Mul(Bottleneck.Mul(5, 3), 8) // weakest edge 3
	path2 := Bottleneck.Mul(4, 4)                    // weakest edge 4
	best := Bottleneck.Add(path1, path2)
	if best != 4 {
		t.Fatalf("widest path should be 4, got %g", best)
	}
	if !Bottleneck.Equal(Bottleneck.Mul(5, Bottleneck.Zero()), Bottleneck.Zero()) {
		t.Fatalf("zero (−inf) should be absorbing")
	}
}

func TestProductSemiringComputesAverages(t *testing.T) {
	// Sum and count in one pass: the product semiring Nat × Nat with weights
	// (value, 1) accumulates (Σ value, count).
	prod := NewProduct[int64, int64](Nat, Nat)
	values := []int64{4, 8, 15, 16, 23, 42}
	acc := prod.Zero()
	for _, v := range values {
		acc = prod.Add(acc, Pair[int64, int64]{First: v, Second: 1})
	}
	if acc.First != 108 || acc.Second != 6 {
		t.Fatalf("expected (108, 6), got %s", prod.Format(acc))
	}
}

func TestViterbiAndFuzzySemantics(t *testing.T) {
	// Viterbi: probability of the best derivation.
	best := MaxTimes.Add(MaxTimes.Mul(0.5, 0.5), MaxTimes.Mul(0.9, 0.2))
	if best != 0.25 {
		t.Fatalf("Viterbi best = %g, want 0.25", best)
	}
	// Fuzzy: strongest alternative of weakest links.
	f := Fuzzy.Add(Fuzzy.Mul(0.7, 0.4), Fuzzy.Mul(0.6, 0.5))
	if f != 0.5 {
		t.Fatalf("Fuzzy value = %g, want 0.5", f)
	}
	// Łukasiewicz t-norm.
	if got := Lukasiewicz.Mul(0.7, 0.5); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("0.7 ⊗ 0.5 = %g, want 0.2", got)
	}
	if got := Lukasiewicz.Mul(0.3, 0.4); got != 0 {
		t.Fatalf("0.3 ⊗ 0.4 = %g, want 0", got)
	}
}

func TestKBestQuickProperties(t *testing.T) {
	kb := NewKBest(4)
	mk := func(raw []int8) []int64 {
		cs := make([]int64, 0, len(raw))
		for _, v := range raw {
			cs = append(cs, int64(v)%32)
		}
		return kb.Costs(cs...)
	}
	// Addition is idempotent-free but bounded: the result never exceeds K
	// elements and is always sorted.
	sortedAndBounded := func(ra, rb []int8) bool {
		out := kb.Add(mk(ra), mk(rb))
		if len(out) > kb.K {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i-1] > out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(sortedAndBounded, nil); err != nil {
		t.Error(err)
	}
	// The best (first) element of a sum is the min of the bests.
	bestOfSum := func(ra, rb []int8) bool {
		a, b := mk(ra), mk(rb)
		out := kb.Add(a, b)
		if len(a) == 0 && len(b) == 0 {
			return len(out) == 0
		}
		want := int64(math.MaxInt64)
		if len(a) > 0 {
			want = a[0]
		}
		if len(b) > 0 && b[0] < want {
			want = b[0]
		}
		return len(out) > 0 && out[0] == want
	}
	if err := quick.Check(bestOfSum, nil); err != nil {
		t.Error(err)
	}
}
