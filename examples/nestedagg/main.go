// Nested weighted queries (Section 7 of the paper): the introduction's two
// FOG[C] examples — the maximum average neighbour weight, and the vertices
// that have a "heavy" neighbour — evaluated with the Theorem 26 machinery,
// including constant-delay enumeration of the boolean answers.
//
//	go run ./examples/nestedagg
package main

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/nested"
	"repro/internal/semiring"
	"repro/internal/structure"
	"repro/internal/workload"
)

func main() {
	src := workload.BoundedDegree(4000, 3, 13)
	// Re-home onto a signature with a trivial unary guard V.
	sig := structure.MustSignature(
		[]structure.RelSymbol{{Name: "E", Arity: 2}, {Name: "V", Arity: 1}},
		nil,
	)
	a := structure.NewStructure(sig, src.A.N)
	for _, t := range src.A.Tuples("E") {
		a.MustAddTuple("E", t...)
	}
	for v := 0; v < a.N; v++ {
		a.MustAddTuple("V", v)
	}
	db := nested.NewDatabase(a)
	must(db.DeclareSRelation("weight", nested.NatSemiring, 1))
	for v := 0; v < a.N; v++ {
		must(db.SetValue("weight", structure.Tuple{v}, src.VertexWeight[v]))
	}
	fmt.Printf("database: %d vertices, %d edges, N-valued vertex weights\n\n", a.N, len(a.Tuples("E")))

	// Query 1 (introduction):  max_x ( Σ_y [E(x,y)]·w(y) / Σ_y [E(x,y)] ),
	// with an integer ratio connective and a max-plus outer aggregation.
	sumW := nested.Sum([]string{"y"},
		nested.Times(nested.Bracket(nested.NatSemiring, nested.B("E", "x", "y")), nested.S(nested.NatSemiring, "weight", "y")))
	degree := nested.Sum([]string{"y"}, nested.Bracket(nested.NatSemiring, nested.B("E", "x", "y")))
	avg := nested.Guard("V", []string{"x"}, nested.RatioNat, sumW, degree)
	maxAvg := nested.Sum([]string{"x"}, nested.Guard("V", []string{"x"}, nested.IntoMaxPlus, avg))

	ev := nested.NewEvaluator(db, compile.Options{})
	v, err := ev.EvalClosed(maxAvg)
	must(err)
	fmt.Printf("max over x of the average weight of x's out-neighbours: %s\n",
		semiring.MaxPlus.Format(v.(semiring.Ext)))

	// Query 2 (introduction):  f(x) = ∃y E(x,y) ∧ ( w(y) > Σ_z [E(y,z)]·w(z) ),
	// a boolean nested query whose answers we enumerate with constant delay.
	neighbourSum := nested.Sum([]string{"z"},
		nested.Times(nested.Bracket(nested.NatSemiring, nested.B("E", "y", "z")), nested.S(nested.NatSemiring, "weight", "z")))
	heavy := nested.Guard("V", []string{"y"}, nested.GreaterThan(nested.NatSemiring),
		nested.S(nested.NatSemiring, "weight", "y"), neighbourSum)
	f := nested.Exists([]string{"y"}, nested.Times(nested.B("E", "x", "y"), heavy))

	ev2 := nested.NewEvaluator(db, compile.Options{})
	ans, err := ev2.EnumerateBool(f, []string{"x"})
	must(err)
	fmt.Printf("\nvertices with a neighbour heavier than its own neighbourhood: %d\n", ans.Count())
	fmt.Println("first few such vertices (constant-delay enumeration):")
	cur := ans.Cursor()
	for i := 0; i < 5; i++ {
		t, ok := cur.Next()
		if !ok {
			break
		}
		fmt.Printf("  x = %d\n", t[0])
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
