package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text exposition format, version 0.0.4 — hand-rolled because the
// repo is dependency-free by policy.  Only the line shapes the format needs:
// HELP/TYPE headers, counters, gauges, and cumulative histogram buckets.

// Labels is one metric's label set; rendered sorted by key for stable output.
type Labels map[string]string

func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// renderWith renders the label set with one extra pair appended (used for the
// le label of histogram buckets, which must combine with the base labels).
func (l Labels) renderWith(key, val string) string {
	ext := make(Labels, len(l)+1)
	for k, v := range l {
		ext[k] = v
	}
	ext[key] = val
	return ext.render()
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// Writer accumulates metric families in exposition format.  Write the
// HELP/TYPE header once per family (Header), then one or more samples.
type Writer struct {
	w   io.Writer
	err error
}

// NewWriter wraps an io.Writer; errors are sticky and reported by Err.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Err returns the first write error, if any.
func (pw *Writer) Err() error { return pw.err }

func (pw *Writer) printf(format string, args ...any) {
	if pw.err != nil {
		return
	}
	_, pw.err = fmt.Fprintf(pw.w, format, args...)
}

// Header emits the # HELP / # TYPE preamble of one metric family.
// kind is "counter", "gauge" or "histogram".
func (pw *Writer) Header(name, help, kind string) {
	pw.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
}

// Counter emits one counter sample.
func (pw *Writer) Counter(name string, labels Labels, v uint64) {
	pw.printf("%s%s %d\n", name, labels.render(), v)
}

// Gauge emits one gauge sample.
func (pw *Writer) Gauge(name string, labels Labels, v float64) {
	pw.printf("%s%s %g\n", name, labels.render(), v)
}

// histogramBounds are the le bucket bounds (in seconds) that /metrics
// exposes.  They are chosen from the histogram's own octave grid — every
// bound is 2^k nanoseconds, which is exactly the lo edge of some internal
// bucket — so re-bucketing a Snapshot onto them is exact, never split.
// Range: 256ns .. ~69s, plenty for both nanosecond waves and slow queries.
var histogramBounds = func() []uint64 {
	var bs []uint64
	for exp := 8; exp <= 36; exp += 2 {
		bs = append(bs, uint64(1)<<uint(exp))
	}
	return bs
}()

// Histogram emits one histogram family sample set — cumulative _bucket lines
// with le in seconds, then _sum and _count — from a Snapshot.
func (pw *Writer) Histogram(name string, labels Labels, s *Snapshot) {
	cum := uint64(0)
	next := 0 // next internal bucket to fold in
	for _, bound := range histogramBounds {
		for next < NumBuckets {
			_, hi := BucketBounds(next)
			if hi > bound {
				break
			}
			cum += s.Counts[next]
			next++
		}
		pw.printf("%s_bucket%s %d\n", name, labels.renderWith("le", formatSeconds(bound)), cum)
	}
	pw.printf("%s_bucket%s %d\n", name, labels.renderWith("le", "+Inf"), s.Count)
	pw.printf("%s_sum%s %g\n", name, labels.render(), Seconds(s.Sum))
	pw.printf("%s_count%s %d\n", name, labels.render(), s.Count)
}

// formatSeconds renders a nanosecond bound as seconds without float noise.
func formatSeconds(ns uint64) string {
	const giga = 1_000_000_000
	whole := ns / giga
	frac := ns % giga
	if frac == 0 {
		return fmt.Sprintf("%d", whole)
	}
	s := fmt.Sprintf("%d.%09d", whole, frac)
	return strings.TrimRight(s, "0")
}
