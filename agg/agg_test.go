package agg

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// testDB is a tiny deterministic database: a directed triangle 0→1→2→0 plus
// the edge 2→3, marks S = {0, 2}, edge weights w and vertex weights u.
const testDB = `
domain 4
rel E 2
rel S 1
wsym w 2
wsym u 1
E 0 1
E 1 2
E 2 0
E 2 3
S 0
S 2
w 0 1 2
w 1 2 3
w 2 0 5
w 2 3 1
u 0 1
u 1 2
u 2 3
u 3 4
`

func testEngine(t *testing.T) *Engine {
	t.Helper()
	eng, err := OpenReader(strings.NewReader(testDB))
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	return eng
}

const edgeSum = "sum x, y . [E(x,y)] * w(x,y)"

func TestPrepareEvalSemirings(t *testing.T) {
	eng := testEngine(t)
	ctx := context.Background()

	p, err := eng.Prepare(ctx, edgeSum)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if got, err := p.Eval(ctx); err != nil || got != "11" {
		t.Fatalf("natural edge sum = %q, %v; want 11", got, err)
	}
	if p.Enumerable() {
		t.Error("expression query reports Enumerable")
	}
	if st := p.Stats(); st.Gates == 0 || st.Depth == 0 {
		t.Errorf("degenerate circuit stats %+v", st)
	}
	if p.Footprint() <= 0 {
		t.Errorf("non-positive footprint %d", p.Footprint())
	}
	if p.Canonical() == "" {
		t.Error("empty canonical form")
	}

	// Rebinding semirings shares the compilation.
	mp, err := p.In("minplus")
	if err != nil {
		t.Fatalf("In(minplus): %v", err)
	}
	if got, _ := mp.Eval(ctx); got != "1" {
		t.Errorf("minplus edge sum = %q, want 1 (the lightest edge)", got)
	}
	bl, err := p.In("boolean")
	if err != nil {
		t.Fatalf("In(boolean): %v", err)
	}
	if got, _ := bl.Eval(ctx); got != "true" {
		t.Errorf("boolean edge sum = %q, want true", got)
	}
	pv, err := p.In("provenance")
	if err != nil {
		t.Fatalf("In(provenance): %v", err)
	}
	if got, _ := pv.Eval(ctx); !strings.Contains(string(got), "w(0,1)") {
		t.Errorf("provenance value %q does not mention w(0,1)", got)
	}

	// The triangle query in natural and minplus.
	tri, err := eng.Prepare(ctx,
		"sum x, y, z . [E(x,y) & E(y,z) & E(z,x)] * w(x,y) * w(y,z) * w(z,x)")
	if err != nil {
		t.Fatalf("Prepare triangles: %v", err)
	}
	// The triangle 0→1→2→0 in 3 rotations: 3 · (2·3·5) = 90.
	if got, _ := tri.Eval(ctx); got != "90" {
		t.Errorf("triangle weight = %q, want 90", got)
	}
}

func TestPointEval(t *testing.T) {
	eng := testEngine(t)
	ctx := context.Background()
	p, err := eng.Prepare(ctx, "sum y . [E(x,y)] * w(x,y)")
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if got := p.FreeVars(); len(got) != 1 || got[0] != "x" {
		t.Fatalf("FreeVars = %v, want [x]", got)
	}
	wants := map[int]string{0: "2", 1: "3", 2: "6", 3: "0"}
	for x, want := range wants {
		got, err := p.Eval(ctx, x)
		if err != nil {
			t.Fatalf("Eval(%d): %v", x, err)
		}
		if string(got) != want {
			t.Errorf("f(%d) = %q, want %s", x, got, want)
		}
	}
	// Closed evaluation of an open query, and wrong arity, are argument
	// errors.
	if _, err := p.Eval(ctx); !errors.Is(err, ErrArgument) {
		t.Errorf("Eval() on open query: %v, want ErrArgument", err)
	}
	if _, err := p.Eval(ctx, 1, 2); !errors.Is(err, ErrArgument) {
		t.Errorf("Eval(1,2): %v, want ErrArgument", err)
	}
}

func TestSessionUpdates(t *testing.T) {
	eng := testEngine(t)
	ctx := context.Background()
	p, err := eng.Prepare(ctx, edgeSum, WithDynamic("E"))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	s, err := p.Session()
	if err != nil {
		t.Fatalf("Session: %v", err)
	}
	defer s.Close()

	if got, _ := s.Eval(ctx); got != "11" {
		t.Fatalf("initial session value %q, want 11", got)
	}
	if err := s.Set(SetWeight("w", []int{0, 1}, 10)); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if got, _ := s.Eval(ctx); got != "19" {
		t.Errorf("after w(0,1)=10: %q, want 19", got)
	}
	// Remove the edge 2→3 (weight 1), then restore everything in one batch.
	if err := s.Set(SetTuple("E", []int{2, 3}, false)); err != nil {
		t.Fatalf("SetTuple: %v", err)
	}
	if got, _ := s.Eval(ctx); got != "18" {
		t.Errorf("after deleting E(2,3): %q, want 18", got)
	}
	if err := s.ApplyBatch([]Change{
		SetWeight("w", []int{0, 1}, 2),
		SetTuple("E", []int{2, 3}, true),
	}); err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	if got, _ := s.Eval(ctx); got != "11" {
		t.Errorf("after restoring batch: %q, want 11", got)
	}

	// The Prepared's own evaluation is unaffected by session updates.
	if got, _ := p.Eval(ctx); got != "11" {
		t.Errorf("Prepared.Eval after session updates: %q, want 11", got)
	}

	// Update errors.
	if err := s.Set(Change{}); !errors.Is(err, ErrUpdate) {
		t.Errorf("empty change: %v, want ErrUpdate", err)
	}
	if err := s.Set(SetWeight("nope", []int{0}, 1)); !errors.Is(err, ErrUpdate) {
		t.Errorf("unknown weight: %v, want ErrUpdate", err)
	}
	if err := s.Set(SetTuple("S", []int{0}, false)); !errors.Is(err, ErrUpdate) {
		t.Errorf("non-dynamic relation: %v, want ErrUpdate", err)
	}
	// All-or-nothing batches.
	before, _ := s.Eval(ctx)
	err = s.ApplyBatch([]Change{
		SetWeight("w", []int{0, 1}, 999),
		SetWeight("nope", []int{0}, 1),
	})
	if !errors.Is(err, ErrUpdate) {
		t.Fatalf("invalid batch: %v, want ErrUpdate", err)
	}
	if after, _ := s.Eval(ctx); after != before {
		t.Errorf("invalid batch partially applied: %q -> %q", before, after)
	}
}

func TestSessionBusyAndClosed(t *testing.T) {
	eng := testEngine(t)
	p, err := eng.Prepare(context.Background(), edgeSum)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	s, err := p.Session()
	if err != nil {
		t.Fatalf("Session: %v", err)
	}

	// Hold the write half as a concurrent update would: writes fail fast
	// with ErrSessionBusy, reads fall back to an epoch snapshot and succeed.
	want, err := s.Eval(context.Background())
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	s.writerMu.Lock()
	if err := s.Set(SetWeight("w", []int{0, 1}, 3)); !errors.Is(err, ErrSessionBusy) {
		t.Errorf("busy Set: %v, want ErrSessionBusy", err)
	}
	if got, err := s.Eval(context.Background()); err != nil || got != want {
		t.Errorf("Eval under held writer = %q, %v; want %q from snapshot fallback", got, err, want)
	}
	s.writerMu.Unlock()

	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := s.Eval(context.Background()); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("Eval after Close: %v, want ErrSessionClosed", err)
	}
	if err := s.Set(SetWeight("w", []int{0, 1}, 3)); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("Set after Close: %v, want ErrSessionClosed", err)
	}
}

func TestEnumerate(t *testing.T) {
	eng := testEngine(t)
	ctx := context.Background()
	p, err := eng.Prepare(ctx, "E(x,y) & S(x)")
	if err != nil {
		t.Fatalf("Prepare formula: %v", err)
	}
	if !p.Enumerable() {
		t.Fatal("formula query is not Enumerable")
	}
	if got := p.AnswerVars(); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("AnswerVars = %v, want [x y]", got)
	}
	count, err := p.AnswerCount(ctx)
	if err != nil {
		t.Fatalf("AnswerCount: %v", err)
	}
	if count != 3 {
		t.Fatalf("AnswerCount = %d, want 3 {(0,1),(2,0),(2,3)}", count)
	}

	seen := map[string]bool{}
	for ans, err := range p.Enumerate(ctx) {
		if err != nil {
			t.Fatalf("Enumerate: %v", err)
		}
		if len(ans) != 2 {
			t.Fatalf("answer %v has arity %d", ans, len(ans))
		}
		x, y := ans[0], ans[1]
		if !eng.db.a.HasTuple("E", x, y) || !eng.db.a.HasTuple("S", x) {
			t.Errorf("answer (%d,%d) does not satisfy the formula", x, y)
		}
		key := fmt.Sprint(ans)
		if seen[key] {
			t.Errorf("answer %v enumerated twice", ans)
		}
		seen[key] = true
	}
	if int64(len(seen)) != count {
		t.Errorf("enumerated %d answers, count says %d", len(seen), count)
	}

	// Membership point query through the same Prepared.
	if got, err := p.Eval(ctx, 2, 0); err != nil || got != "1" {
		t.Errorf("membership (2,0) = %q, %v; want 1", got, err)
	}
	if got, err := p.Eval(ctx, 1, 2); err != nil || got != "0" {
		t.Errorf("membership (1,2) = %q, %v; want 0", got, err)
	}

	// WithAnswerVars reorders the answer tuples.
	q, err := eng.Prepare(ctx, "E(x,y) & S(x)", WithAnswerVars("y", "x"))
	if err != nil {
		t.Fatalf("Prepare with answer vars: %v", err)
	}
	for ans, err := range q.Enumerate(ctx) {
		if err != nil {
			t.Fatalf("Enumerate reordered: %v", err)
		}
		if !eng.db.a.HasTuple("E", ans[1], ans[0]) {
			t.Errorf("reordered answer %v is not an (y,x) edge", ans)
		}
	}

	// Expression queries are not enumerable.
	ex, err := eng.Prepare(ctx, edgeSum)
	if err != nil {
		t.Fatalf("Prepare expression: %v", err)
	}
	for _, err := range ex.Enumerate(ctx) {
		if !errors.Is(err, ErrNotEnumerable) {
			t.Errorf("Enumerate on expression: %v, want ErrNotEnumerable", err)
		}
	}
	if _, err := ex.AnswerCount(ctx); !errors.Is(err, ErrNotEnumerable) {
		t.Errorf("AnswerCount on expression: %v, want ErrNotEnumerable", err)
	}
}

func TestErrorTaxonomy(t *testing.T) {
	eng := testEngine(t)
	ctx := context.Background()

	// Parse errors carry the byte offset of the failure.
	_, err := eng.Prepare(ctx, "sum x , . [E(x,y)]")
	if !errors.Is(err, ErrParse) {
		t.Fatalf("parse failure: %v, want ErrParse", err)
	}
	var aggErr *Error
	if !errors.As(err, &aggErr) {
		t.Fatalf("parse failure is not an *agg.Error: %v", err)
	}
	if aggErr.Pos < 0 {
		t.Errorf("parse error lost its position: %+v", aggErr)
	}
	if aggErr.Query != "sum x , . [E(x,y)]" {
		t.Errorf("parse error lost its query: %q", aggErr.Query)
	}

	// Compile errors: unknown relation in an otherwise valid expression.
	if _, err := eng.Prepare(ctx, "sum x . [Nope(x)] * u(x)"); !errors.Is(err, ErrCompile) {
		t.Errorf("unknown relation: %v, want ErrCompile", err)
	}

	// Unknown semirings.
	if _, err := eng.Prepare(ctx, edgeSum, WithSemiring("nope")); !errors.Is(err, ErrUnknownSemiring) {
		t.Errorf("unknown semiring: %v, want ErrUnknownSemiring", err)
	}
	p, err := eng.Prepare(ctx, edgeSum)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.In("nope"); !errors.Is(err, ErrUnknownSemiring) {
		t.Errorf("In(nope): %v, want ErrUnknownSemiring", err)
	}

	// Error codes are stable.
	for _, tc := range []struct {
		err  error
		code string
	}{
		{&Error{Kind: ErrParse}, "parse"},
		{&Error{Kind: ErrCompile}, "compile"},
		{&Error{Kind: ErrUnknownSemiring}, "unknown_semiring"},
		{&Error{Kind: ErrSessionBusy}, "session_busy"},
		{context.Canceled, "canceled"},
		{errors.New("other"), "error"},
	} {
		if got := ErrorCode(tc.err); got != tc.code {
			t.Errorf("ErrorCode(%v) = %q, want %q", tc.err, got, tc.code)
		}
	}
}

func TestRegisterValidation(t *testing.T) {
	if err := Register(nil); !errors.Is(err, ErrArgument) {
		t.Errorf("Register(nil): %v, want ErrArgument", err)
	}
	dup := NewSemiring[int64]("natural", natOps{}, func(_ string, _ []int, v int64) int64 { return v })
	if err := Register(dup); !errors.Is(err, ErrArgument) {
		t.Errorf("duplicate Register: %v, want ErrArgument", err)
	}
	names := SemiringNames()
	for _, want := range []string{"boolean", "minplus", "natural", "provenance"} {
		found := false
		for _, n := range names {
			found = found || n == want
		}
		if !found {
			t.Errorf("builtin semiring %q missing from %v", want, names)
		}
	}
}

// natOps is a standalone Arithmetic implementation, proving the public
// interface is sufficient to define a carrier without internal imports.
type natOps struct{}

func (natOps) Zero() int64           { return 0 }
func (natOps) One() int64            { return 1 }
func (natOps) Add(a, b int64) int64  { return a + b }
func (natOps) Mul(a, b int64) int64  { return a * b }
func (natOps) Equal(a, b int64) bool { return a == b }
func (natOps) Format(a int64) string { return fmt.Sprint(a) }

// slowOps is natOps with a busy-wait in Add, slowing evaluation enough to be
// cancelled mid-flight deterministically.
type slowOps struct{ natOps }

func (slowOps) Add(a, b int64) int64 {
	deadline := time.Now().Add(20 * time.Microsecond)
	for time.Now().Before(deadline) {
	}
	return a + b
}

var registerSlowOnce sync.Once

func registerSlow(t *testing.T) {
	t.Helper()
	registerSlowOnce.Do(func() {
		MustRegister(NewSemiring[int64]("slow-natural", slowOps{},
			func(_ string, _ []int, v int64) int64 { return v }))
	})
}

// TestEvalCancellation checks a cancelled context stops a running parallel
// evaluation in bounded time (run under -race in CI).
func TestEvalCancellation(t *testing.T) {
	registerSlow(t)
	db, err := Generate("grid", 1024, 3)
	if err != nil {
		t.Fatal(err)
	}
	eng := Open(db)
	p, err := eng.Prepare(context.Background(), edgeSum, WithSemiring("slow-natural"), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}

	// Uncancelled baseline: the query evaluates fine (and slowly).
	start := time.Now()
	want, err := p.Eval(context.Background())
	if err != nil {
		t.Fatalf("baseline Eval: %v", err)
	}
	full := time.Since(start)

	// Pre-cancelled contexts fail fast.
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Eval(pre); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Eval: %v, want context.Canceled", err)
	}

	// Mid-flight cancellation stops well before the full evaluation time.
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	start = time.Now()
	go func() {
		_, err := p.Eval(ctx)
		errCh <- err
	}()
	time.Sleep(full / 10)
	cancel()
	err = <-errCh
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-flight Eval: %v, want context.Canceled", err)
	}
	if elapsed > full {
		t.Errorf("cancelled Eval took %v, full evaluation takes %v", elapsed, full)
	}
	// And the Prepared still works afterwards.
	if got, err := p.Eval(context.Background()); err != nil || got != want {
		t.Errorf("Eval after cancellation = %q, %v; want %q", got, err, want)
	}
}

// TestEnumerateCancellation checks a cancelled context stops an enumeration
// stream between answers and fails preprocessing fast.
func TestEnumerateCancellation(t *testing.T) {
	db, err := Generate("grid", 144, 3)
	if err != nil {
		t.Fatal(err)
	}
	eng := Open(db)

	// Pre-cancelled Prepare of a formula aborts the preprocessing wave.
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Prepare(pre, "E(x,y) & E(y,z)"); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Prepare: %v, want context.Canceled", err)
	}

	p, err := eng.Prepare(context.Background(), "E(x,y) & E(y,z)")
	if err != nil {
		t.Fatal(err)
	}
	total, err := p.AnswerCount(context.Background())
	if err != nil || total < 16 {
		t.Fatalf("AnswerCount = %d, %v; want a rich answer set", total, err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	streamed := 0
	var finalErr error
	for ans, err := range p.Enumerate(ctx) {
		if err != nil {
			finalErr = err
			break
		}
		_ = ans
		streamed++
		if streamed == 8 {
			cancel()
		}
	}
	if !errors.Is(finalErr, context.Canceled) {
		t.Fatalf("cancelled stream ended with %v, want context.Canceled", finalErr)
	}
	if streamed != 8 {
		t.Errorf("streamed %d answers after cancelling at 8", streamed)
	}
}
