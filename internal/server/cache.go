package server

import (
	"container/list"
	"sync"
)

// lruCache is a size-bounded LRU of compiled artefacts.  Entries are created
// at most once per key: concurrent requests for the same key share one
// compilation (the loser of the insertion race waits on the winner's
// sync.Once), so a thundering herd on a cold query pays the compiler once.
type lruCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used; values are *cacheSlot
	items map[string]*list.Element
}

type cacheSlot struct {
	key  string
	once sync.Once
	// value and err are written inside once and read only afterwards.
	value any
	err   error
}

func newLRUCache(max int) *lruCache {
	if max <= 0 {
		max = 128
	}
	return &lruCache{max: max, order: list.New(), items: map[string]*list.Element{}}
}

// getOrCreate returns the cached value for key, building it with build on
// first use.  The second return reports whether the slot already existed
// (a cache hit — possibly still being built by another goroutine).  A slot
// whose build failed is evicted so the next request retries.
func (c *lruCache) getOrCreate(key string, build func() (any, error)) (any, bool, error) {
	c.mu.Lock()
	el, hit := c.items[key]
	if hit {
		c.order.MoveToFront(el)
	} else {
		el = c.order.PushFront(&cacheSlot{key: key})
		c.items[key] = el
		for c.order.Len() > c.max {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.items, oldest.Value.(*cacheSlot).key)
		}
	}
	slot := el.Value.(*cacheSlot)
	c.mu.Unlock()

	slot.once.Do(func() {
		slot.value, slot.err = build()
		if slot.err != nil {
			c.remove(key, slot)
		}
	})
	return slot.value, hit, slot.err
}

// remove drops the slot from the cache if it is still the one mapped at key.
func (c *lruCache) remove(key string, slot *cacheSlot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok && el.Value.(*cacheSlot) == slot {
		c.order.Remove(el)
		delete(c.items, key)
	}
}

// len reports the current number of cached entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
