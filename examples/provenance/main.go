// Provenance analysis (Section 5 / Example 21 of the paper): evaluate the
// triangle query in the free (provenance) semiring, where every edge carries
// a unique identifier, and stream the derivations of the answer with a
// constant-delay enumerator.  The same provenance specialises to other
// semirings through homomorphisms.
//
//	go run ./examples/provenance
package main

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/enumerate"
	"repro/internal/expr"
	"repro/internal/logic"
	"repro/internal/provenance"
	"repro/internal/semiring"
	"repro/internal/structure"
)

func main() {
	// The 4-vertex graph of Example 21: edges ab, bc, ca, bd, da.
	sig := structure.MustSignature(
		[]structure.RelSymbol{{Name: "E", Arity: 2}},
		[]structure.WeightSymbol{{Name: "w", Arity: 2}},
	)
	names := []string{"a", "b", "c", "d"}
	a := structure.NewStructure(sig, 4)
	edges := [][2]int{{0, 1}, {1, 2}, {2, 0}, {1, 3}, {3, 0}}
	for _, e := range edges {
		a.MustAddTuple("E", e[0], e[1])
	}

	// f(x) = Σ_{y,z} w(x,y)·w(y,z)·w(z,x) restricted to edges; we compute the
	// closed version and read off the derivations.
	f := expr.Agg([]string{"x", "y", "z"}, expr.Times(
		expr.Guard(logic.Conj(logic.R("E", "x", "y"), logic.R("E", "y", "z"), logic.R("E", "z", "x"))),
		expr.W("w", "x", "y"), expr.W("w", "y", "z"), expr.W("w", "z", "x"),
	))
	res, err := compile.Compile(a, f, compile.Options{})
	if err != nil {
		panic(err)
	}

	// Each edge weight is the formal generator e_{xy} of the free semiring,
	// supplied to the circuit as a constant-delay iterator.
	gen := func(t structure.Tuple) provenance.Generator {
		return provenance.Generator("e" + names[t[0]] + names[t[1]])
	}
	inputs := func(k structure.WeightKey) enumerate.Value {
		t := structure.ParseTupleKey(k.Tuple)
		if k.Weight != "w" || !a.HasTuple("E", t...) {
			return enumerate.Zero()
		}
		return enumerate.Gen(gen(t))
	}
	e := enumerate.New(res.Circuit, inputs)
	fmt.Println("derivations of the triangle query (each triangle appears once per rotation):")
	for _, m := range e.CollectAll(0) {
		fmt.Printf("  %s\n", m)
	}

	// The universal property: specialise the provenance to other semirings.
	poly := enumerate.EvaluateExplicit(res.Circuit, inputs)
	count := provenance.Eval[int64](semiring.Nat, poly, func(provenance.Generator) int64 { return 1 })
	fmt.Printf("\ncounting homomorphism (every edge ↦ 1):        %d derivations\n", count)
	costs := map[provenance.Generator]int64{"eab": 1, "ebc": 4, "eca": 2, "ebd": 1, "eda": 1}
	cheapest := provenance.Eval[semiring.Ext](semiring.MinPlus, poly, func(g provenance.Generator) semiring.Ext {
		return semiring.Fin(costs[g])
	})
	fmt.Printf("min-cost homomorphism (edge costs %v): %s\n", costs, semiring.MinPlus.Format(cheapest))
	without := provenance.Eval[bool](semiring.Bool, poly, func(g provenance.Generator) bool { return g != "ebc" })
	fmt.Printf("does any triangle survive deleting edge bc?     %v\n", without)
}
