package obs

import (
	"context"
	"time"
)

// Stage names one instrumented phase of the serving pipeline, following the
// paper's preprocessing → maintenance split: parse, cache lookup and compile
// are the linear-time preprocessing (Theorem 6), freeze is the Program
// flattening, eval is a circuit evaluation (closed or point query), and wave
// is one dynamic-update propagation wave (Theorem 8).
type Stage uint8

const (
	StageParse Stage = iota
	StageCacheLookup
	StageCompile
	StageFreeze
	StageEval
	StageWave
	NumStages
)

var stageNames = [NumStages]string{
	StageParse:       "parse",
	StageCacheLookup: "cache_lookup",
	StageCompile:     "compile",
	StageFreeze:      "freeze",
	StageEval:        "eval",
	StageWave:        "wave",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Tracer records stage timings into one histogram per stage.  A nil *Tracer
// is a valid no-op recorder: every method short-circuits, so instrumented
// code needs no conditionals beyond the calls themselves.
type Tracer struct {
	stages [NumStages]*Histogram
}

// NewTracer returns a tracer with an empty histogram per stage.
func NewTracer() *Tracer {
	t := &Tracer{}
	for i := range t.stages {
		t.stages[i] = NewHistogram()
	}
	return t
}

// Stage returns the histogram of one stage (nil for a nil tracer).
func (t *Tracer) Stage(s Stage) *Histogram {
	if t == nil {
		return nil
	}
	return t.stages[s]
}

// Observe records one duration against a stage.
func (t *Tracer) Observe(s Stage, d time.Duration) {
	if t == nil {
		return
	}
	t.stages[s].Observe(d)
}

// Span is one stage timing in flight: a value, not an allocation, so
// starting and ending spans on hot paths is free when no tracer is attached
// and two clock reads plus one atomic add when one is.
type Span struct {
	t     *Tracer
	stage Stage
	start time.Time
}

// StartSpan opens a span against the tracer (the zero Span for nil).
func (t *Tracer) StartSpan(s Stage) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, stage: s, start: time.Now()}
}

// End records the elapsed time; safe on the zero Span and idempotent only in
// the sense that callers must not End twice (each End records once).
func (sp Span) End() {
	if sp.t == nil {
		return
	}
	sp.t.stages[sp.stage].Observe(time.Since(sp.start))
}

// WaveHook adapts the tracer to the func(time.Duration) listener shape the
// circuit engines accept, recording into the wave stage.  A nil tracer
// yields a nil hook, which the engines treat as "stay uninstrumented" (no
// clock reads on the update path).
func (t *Tracer) WaveHook() func(time.Duration) {
	if t == nil {
		return nil
	}
	return t.stages[StageWave].Observe
}

type ctxKey struct{}

// NewContext returns a context carrying the tracer; spans opened downstream
// via FromContext record into it.  A nil tracer returns ctx unchanged.
func NewContext(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the tracer carried by ctx, or nil.  The nil result is
// directly usable: every Tracer method is nil-safe.
func FromContext(ctx context.Context) *Tracer {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Tracer)
	return t
}
