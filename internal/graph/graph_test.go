package graph

import (
	"math/rand"
	"testing"
)

func pathGraph(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func cycleGraph(n int) *Graph {
	g := pathGraph(n)
	if n > 2 {
		g.AddEdge(n-1, 0)
	}
	return g
}

func gridGraph(w, h int) *Graph {
	g := New(w * h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				g.AddEdge(id(x, y), id(x+1, y))
			}
			if y+1 < h {
				g.AddEdge(id(x, y), id(x, y+1))
			}
		}
	}
	return g
}

func completeGraph(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

func randomSparseGraph(n, m int, seed int64) *Graph {
	r := rand.New(rand.NewSource(seed))
	g := New(n)
	for g.M() < m {
		u, v := r.Intn(n), r.Intn(n)
		g.AddEdge(u, v)
	}
	return g
}

func TestBasicOperations(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 1) // duplicate ignored
	g.AddEdge(3, 3) // self loop ignored
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Errorf("HasEdge(0,1) should hold in both directions")
	}
	if g.HasEdge(0, 2) {
		t.Errorf("HasEdge(0,2) should not hold")
	}
	if g.Degree(1) != 2 {
		t.Errorf("Degree(1) = %d, want 2", g.Degree(1))
	}
	if len(g.Edges()) != 2 {
		t.Errorf("Edges() returned %d edges, want 2", len(g.Edges()))
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	// 5 and 6 isolated
	comps := g.ConnectedComponents()
	if len(comps) != 4 {
		t.Fatalf("got %d components, want 4", len(comps))
	}
	sizes := map[int]int{}
	for _, c := range comps {
		sizes[len(c)]++
	}
	if sizes[3] != 1 || sizes[2] != 1 || sizes[1] != 2 {
		t.Errorf("unexpected component size distribution: %v", sizes)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := cycleGraph(6)
	sub, toOrig, toSub := g.InducedSubgraph([]int{0, 1, 2, 4})
	if sub.N() != 4 {
		t.Fatalf("subgraph has %d vertices, want 4", sub.N())
	}
	// Edges 0-1 and 1-2 survive; 4 is isolated in the subgraph.
	if sub.M() != 2 {
		t.Errorf("subgraph has %d edges, want 2", sub.M())
	}
	if toOrig[toSub[4]] != 4 {
		t.Errorf("index mappings are not inverse")
	}
	if toSub[3] != -1 {
		t.Errorf("vertex 3 should not be in the subgraph")
	}
}

func TestDegeneracy(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"path", pathGraph(10), 1},
		{"cycle", cycleGraph(10), 2},
		{"grid5x5", gridGraph(5, 5), 2},
		{"complete5", completeGraph(5), 4},
		{"empty", New(4), 0},
		{"single", New(1), 0},
	}
	for _, c := range cases {
		order, d := c.g.DegeneracyOrder()
		if d != c.want {
			t.Errorf("%s: degeneracy = %d, want %d", c.name, d, c.want)
		}
		if len(order) != c.g.N() {
			t.Errorf("%s: order has %d vertices, want %d", c.name, len(order), c.g.N())
		}
		seen := map[int]bool{}
		for _, v := range order {
			if seen[v] {
				t.Errorf("%s: vertex %d repeated in degeneracy order", c.name, v)
			}
			seen[v] = true
		}
	}
}

func TestDegeneracyOrientation(t *testing.T) {
	for _, g := range []*Graph{pathGraph(20), cycleGraph(15), gridGraph(6, 7), randomSparseGraph(100, 250, 1)} {
		o := g.DegeneracyOrientation()
		_, d := g.DegeneracyOrder()
		if o.MaxOutDegree > d {
			t.Errorf("orientation out-degree %d exceeds degeneracy %d", o.MaxOutDegree, d)
		}
		// Every edge is oriented exactly once.
		count := 0
		for v := 0; v < g.N(); v++ {
			count += len(o.Out[v])
			for _, w := range o.Out[v] {
				if !g.HasEdge(v, w) {
					t.Fatalf("orientation contains non-edge (%d,%d)", v, w)
				}
				if idx := o.OutIndex(v, w); idx < 1 || o.Out[v][idx-1] != w {
					t.Fatalf("OutIndex inconsistent for (%d,%d)", v, w)
				}
			}
		}
		if count != g.M() {
			t.Errorf("orientation has %d arcs, want %d", count, g.M())
		}
	}
}

func TestForestBasics(t *testing.T) {
	// A forest: 0 is root of {0,1,2,3}, 4 is root of {4,5}.
	parent := []int{0, 0, 1, 1, 4, 4}
	f := NewForest(parent)
	if f.MaxDepth != 2 {
		t.Errorf("MaxDepth = %d, want 2", f.MaxDepth)
	}
	if !f.IsRoot(0) || !f.IsRoot(4) || f.IsRoot(1) {
		t.Errorf("root detection broken")
	}
	if got := len(f.Roots()); got != 2 {
		t.Errorf("Roots() returned %d roots, want 2", got)
	}
	if f.Ancestor(2, 1) != 1 || f.Ancestor(2, 2) != 0 || f.Ancestor(2, 5) != 0 {
		t.Errorf("Ancestor computation broken")
	}
	if f.AncestorAtDepth(3, 0) != 0 || f.AncestorAtDepth(3, 1) != 1 || f.AncestorAtDepth(3, 2) != 3 {
		t.Errorf("AncestorAtDepth computation broken")
	}
	if f.AncestorAtDepth(3, 5) != -1 {
		t.Errorf("AncestorAtDepth beyond node depth should be -1")
	}
	if !f.IsAncestor(0, 3) || !f.IsAncestor(3, 3) || f.IsAncestor(3, 0) || f.IsAncestor(4, 3) {
		t.Errorf("IsAncestor broken")
	}
	if got := len(f.Children(1)); got != 2 {
		t.Errorf("Children(1) has %d entries, want 2", got)
	}
}

func TestSpanningForestDFS(t *testing.T) {
	for _, g := range []*Graph{pathGraph(30), cycleGraph(20), gridGraph(5, 5), randomSparseGraph(200, 400, 7)} {
		f := SpanningForestDFS(g)
		if f.N() != g.N() {
			t.Fatalf("forest size mismatch")
		}
		// Every tree edge is a graph edge.
		for v := 0; v < g.N(); v++ {
			if !f.IsRoot(v) && !g.HasEdge(v, f.Parent[v]) {
				t.Errorf("tree edge (%d,%d) not in graph", v, f.Parent[v])
			}
		}
		// Vertices in the same component share a root.
		for _, comp := range g.ConnectedComponents() {
			root := f.AncestorAtDepth(comp[0], 0)
			for _, v := range comp {
				if f.AncestorAtDepth(v, 0) != root {
					t.Errorf("component split across trees")
				}
			}
		}
	}
}

func TestEliminationForest(t *testing.T) {
	cases := []struct {
		name     string
		g        *Graph
		maxDepth int // loose upper bound we expect from the heuristic
	}{
		{"path64", pathGraph(64), 7},
		{"star", starGraph(50), 2},
		{"cycle64", cycleGraph(64), 8},
		{"tree", randomTree(200, 3), 12},
		{"sparse", randomSparseGraph(120, 150, 3), 40},
		{"grid4x4", gridGraph(4, 4), 10},
	}
	for _, c := range cases {
		f := EliminationForest(c.g)
		if !ValidEliminationForest(c.g, f) {
			t.Errorf("%s: invalid elimination forest", c.name)
		}
		if f.MaxDepth > c.maxDepth {
			t.Errorf("%s: elimination forest depth %d exceeds expected bound %d", c.name, f.MaxDepth, c.maxDepth)
		}
	}
}

func starGraph(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	return g
}

func randomTree(n int, seed int64) *Graph {
	r := rand.New(rand.NewSource(seed))
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, r.Intn(v))
	}
	return g
}

func TestGreedyColoringProper(t *testing.T) {
	for _, g := range []*Graph{pathGraph(30), cycleGraph(21), gridGraph(8, 8), completeGraph(6), randomSparseGraph(150, 300, 5)} {
		c := GreedyColoring(g, reverseDegeneracyOrder(g))
		if !IsProperColoring(g, c) {
			t.Errorf("greedy colouring is not proper")
		}
		_, d := g.DegeneracyOrder()
		if c.NumColors > d+1 {
			t.Errorf("greedy colouring uses %d colours, want at most degeneracy+1 = %d", c.NumColors, d+1)
		}
		total := 0
		for _, s := range c.ClassSizes() {
			total += s
		}
		if total != g.N() {
			t.Errorf("class sizes do not sum to n")
		}
	}
}

func TestFraternalAugmentationSupergraph(t *testing.T) {
	g := randomSparseGraph(80, 160, 11)
	h := FraternalAugmentation(g)
	for _, e := range g.Edges() {
		if !h.HasEdge(e[0], e[1]) {
			t.Fatalf("augmentation dropped edge %v", e)
		}
	}
	if h.M() < g.M() {
		t.Fatalf("augmentation has fewer edges than original")
	}
}

func TestLowTreedepthColoringQuality(t *testing.T) {
	// For p = 2 on trees, grids and sparse random graphs, the induced
	// subgraphs on any two classes should have small elimination-forest
	// depth.  These are heuristic bounds chosen loosely enough to be stable.
	cases := []struct {
		name  string
		g     *Graph
		p     int
		bound int
	}{
		{"path", pathGraph(100), 2, 3},
		{"tree", randomTree(150, 13), 2, 4},
		{"grid6x6", gridGraph(6, 6), 2, 5},
		{"sparse", randomSparseGraph(100, 140, 17), 2, 8},
	}
	for _, c := range cases {
		col := LowTreedepthColoring(c.g, c.p)
		if !IsProperColoring(c.g, col) {
			t.Errorf("%s: low-treedepth colouring is not proper", c.name)
		}
		depth := MaxForestDepth(c.g, col, c.p)
		if depth > c.bound {
			t.Errorf("%s: max forest depth over %d-subsets is %d, want ≤ %d (colours=%d)",
				c.name, c.p, depth, c.bound, col.NumColors)
		}
	}
}

func TestColoringQualityStats(t *testing.T) {
	g := gridGraph(4, 4)
	col := LowTreedepthColoring(g, 2)
	stats := ColoringQuality(g, col, 2)
	wantSubsets := col.NumColors + col.NumColors*(col.NumColors-1)/2
	if len(stats) != wantSubsets {
		t.Errorf("got %d subset statistics, want %d", len(stats), wantSubsets)
	}
	for _, s := range stats {
		if s.Vertices < 0 || s.Edges < 0 || s.ForestDepth < 0 {
			t.Errorf("negative statistic: %+v", s)
		}
	}
}

func TestSubsets(t *testing.T) {
	subs := Subsets(4, 2)
	// 4 singletons + 6 pairs.
	if len(subs) != 10 {
		t.Fatalf("Subsets(4,2) returned %d subsets, want 10", len(subs))
	}
	seen := map[string]bool{}
	for _, s := range subs {
		if len(s) < 1 || len(s) > 2 {
			t.Errorf("subset %v has invalid size", s)
		}
		key := ""
		for _, x := range s {
			key += string(rune('a' + x))
		}
		if seen[key] {
			t.Errorf("duplicate subset %v", s)
		}
		seen[key] = true
	}
	if len(Subsets(3, 3)) != 7 {
		t.Errorf("Subsets(3,3) should have 7 entries")
	}
}

func TestEliminationForestCoversAllVertices(t *testing.T) {
	g := randomSparseGraph(500, 900, 23)
	f := EliminationForest(g)
	if f.N() != g.N() {
		t.Fatalf("size mismatch")
	}
	for v := 0; v < f.N(); v++ {
		if f.Depth[v] < 0 {
			t.Errorf("vertex %d has no depth assigned", v)
		}
	}
	if !ValidEliminationForest(g, f) {
		t.Errorf("invalid elimination forest on random sparse graph")
	}
}
