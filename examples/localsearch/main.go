// Local search via dynamic enumeration (Example 25 of the paper): build a
// maximal independent set and a minimal dominating set on a planar grid by
// repeatedly asking the dynamic constant-delay enumerator for a local
// improvement and updating the unary predicates describing the current
// solution.  Each round costs constant time, so the whole search is linear.
//
//	go run ./examples/localsearch
package main

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/localsearch"
	"repro/internal/workload"
)

func main() {
	db := workload.Grid(80, 80, 3)
	g := graph.New(db.A.N)
	for _, t := range db.A.Tuples("E") {
		if !g.HasEdge(t[0], t[1]) {
			g.AddEdge(t[0], t[1])
		}
	}
	fmt.Printf("grid: %d vertices, %d edges\n", g.N(), g.M())

	mis, err := localsearch.MaximalIndependentSet(g)
	if err != nil {
		panic(err)
	}
	if !localsearch.IsMaximalIndependentSet(g, mis.Solution) {
		panic("solution is not a maximal independent set")
	}
	report("maximal independent set", g, mis)

	mds, err := localsearch.MinimalDominatingSet(g)
	if err != nil {
		panic(err)
	}
	if !localsearch.IsMinimalDominatingSet(g, mds.Solution) {
		panic("solution is not a minimal dominating set")
	}
	report("minimal dominating set", g, mds)
}

func report(name string, g *graph.Graph, res *localsearch.Result) {
	perRound := 0.0
	if res.Stats.Rounds > 0 {
		perRound = float64(res.Stats.Search.Microseconds()) / float64(res.Stats.Rounds)
	}
	fmt.Printf("%s:\n", name)
	fmt.Printf("  preprocessing: %v\n", res.Stats.Preprocess)
	fmt.Printf("  search:        %v for %d rounds (%.1fµs per round)\n",
		res.Stats.Search, res.Stats.Rounds, perRound)
	fmt.Printf("  solution size: %d (%.1f%% of the grid)\n",
		len(res.Solution), 100*float64(len(res.Solution))/float64(g.N()))
}
