package circuit

import (
	"repro/internal/perm"
	"repro/internal/semiring"
)

// DynSnapshot is a read handle on a Dynamic pinned at one committed epoch:
// every resolution — Value, GateValue, and point queries through EvalWith —
// answers as of that commit, no matter how many mutations the writer has
// applied since.  Taking a snapshot is O(1); resolving a gate costs a digest
// lookup plus, lazily, one walk over the undo entries committed since the
// pin (first entry per gate wins, which is precisely its value at the pinned
// epoch).
//
// A snapshot holds no copy of the value array: it reads the writer's current
// state under the shared lock and rolls dirtied gates back through the undo
// chain, the copy-on-write scheme of the MVCC session layer.  Release it
// when done — an unreleased snapshot pins undo history and its memory grows
// with every write.
//
// A DynSnapshot is intended for a single reader goroutine (its digest and
// scratch are unsynchronised); take one snapshot per goroutine.  Snapshots
// of one Dynamic may be taken, used and released concurrently with each
// other and with the writer.
type DynSnapshot[T any] struct {
	d        *Dynamic[T]
	epoch    uint64 // pinned commit epoch
	digested uint64 // undo history of epochs [epoch, digested) is folded into digest
	digest   map[int32]T
	released bool

	// Overlay scratch of EvalWith, allocated on first use and reused.
	overlay  map[int]T     // gate → value under the current overrides
	changeCh map[int][]int // gate → children changed by the overlay wave
	buckets  [][]int
	queued   []bool
}

// Snapshot pins the current committed epoch and returns a read handle
// resolving every gate as of this moment.  From now until Release, mutations
// record undo entries (in reusable per-epoch buffers), so the writer's
// steady state with no snapshots outstanding stays allocation-free.
func (d *Dynamic[T]) Snapshot() *DynSnapshot[T] {
	d.valMu.Lock()
	e := d.log.Pin()
	d.valMu.Unlock()
	return &DynSnapshot[T]{d: d, epoch: e, digested: e, digest: make(map[int32]T)}
}

// Epoch returns the committed epoch this snapshot is pinned at.
func (s *DynSnapshot[T]) Epoch() uint64 { return s.epoch }

// Release unpins the snapshot, letting the writer truncate undo history it
// no longer needs.  Release is idempotent; a released snapshot keeps
// answering from its digest but stops following new undo entries, so use it
// only before the release.
func (s *DynSnapshot[T]) Release() {
	if s.released {
		return
	}
	s.released = true
	s.d.valMu.Lock()
	s.d.log.Unpin(s.epoch)
	s.d.valMu.Unlock()
}

// Value returns the output gate's value at the pinned epoch.
func (s *DynSnapshot[T]) Value() T {
	s.d.valMu.RLock()
	defer s.d.valMu.RUnlock()
	s.extendLocked()
	return s.resolveLocked(s.d.p.output)
}

// GateValue returns an arbitrary gate's value at the pinned epoch.
func (s *DynSnapshot[T]) GateValue(id int) T {
	s.d.valMu.RLock()
	defer s.d.valMu.RUnlock()
	s.extendLocked()
	return s.resolveLocked(id)
}

// extendLocked folds undo entries committed since the last resolution into
// the digest.  First entry per gate wins: the undo chain is walked from the
// pinned epoch forwards, so the first pre-wave value recorded for a gate is
// its value at the pin.  Caller holds at least the shared lock.
func (s *DynSnapshot[T]) extendLocked() {
	if s.released || s.digested == s.d.log.Epoch() {
		return
	}
	s.digested = s.d.log.Walk(s.digested, func(e valUndo[T]) {
		if _, ok := s.digest[e.gate]; !ok {
			s.digest[e.gate] = e.old
		}
	})
}

// resolveLocked answers one gate at the pinned epoch: its first-recorded
// undo value if the writer dirtied it since the pin, the live value
// otherwise.  Caller holds at least the shared lock with the digest
// extended.
func (s *DynSnapshot[T]) resolveLocked(g int) T {
	if v, ok := s.digest[int32(g)]; ok {
		return v
	}
	return s.d.vals[g]
}

// EvalWith evaluates the output at the pinned epoch under temporary input
// overrides, without touching the shared state: the overrides seed a private
// overlay wave that propagates rank-ascending exactly like the writer's
// wave, reading unchanged gates through the snapshot.  This is how point
// queries run on a snapshot — the writer may commit concurrent batches the
// whole time.
//
// Addition gates recompute by the cheapest applicable rule: a ring delta
// when the semiring subtracts; appending the new summands when every changed
// child was zero at the pinned epoch (the usual case for point-query
// toggles, valid in any semiring); a full fan-in re-sum otherwise.
// Permanent gates recompute from scratch over the snapshot-resolved entries
// — costlier than the writer's maintained structures, but permanents are
// capped at twelve rows and both sides of a snapshot comparison pay the same
// path.
func (s *DynSnapshot[T]) EvalWith(changes []InputChange[T]) T {
	d := s.d
	d.valMu.RLock()
	defer d.valMu.RUnlock()
	s.extendLocked()
	if s.queued == nil {
		s.queued = make([]bool, d.p.numGates)
		s.buckets = make([][]int, d.p.maxRank+1)
		s.overlay = make(map[int]T)
		s.changeCh = make(map[int][]int)
	}
	touched := false
	for _, ch := range changes {
		id := d.p.InputGate(ch.Key)
		if id < 0 {
			continue
		}
		_, already := s.overlay[id]
		if !already && d.s.Equal(s.resolveLocked(id), ch.Value) {
			continue
		}
		s.overlay[id] = ch.Value
		if !already {
			s.markOverlay(id)
		}
		touched = true
	}
	if touched {
		s.runOverlayWave()
	}
	out := s.overlayValue(d.p.output)
	clear(s.overlay)
	clear(s.changeCh)
	return out
}

// overlayValue reads a gate under the current overlay, falling back to the
// snapshot.  Caller holds the shared lock with the digest extended.
func (s *DynSnapshot[T]) overlayValue(g int) T {
	if v, ok := s.overlay[g]; ok {
		return v
	}
	return s.resolveLocked(g)
}

// markOverlay enlists g's parents after g's overlay value changed, mirroring
// the writer's markChanged on the private scratch.
func (s *DynSnapshot[T]) markOverlay(g int) {
	for _, p32 := range s.d.p.ParentIDs(g) {
		p := int(p32)
		s.changeCh[p] = append(s.changeCh[p], g)
		if !s.queued[p] {
			s.queued[p] = true
			r := s.d.p.rank[p]
			s.buckets[r] = append(s.buckets[r], p)
		}
	}
}

// runOverlayWave drains the private rank buckets in increasing order, the
// overlay twin of propagateWave.
func (s *DynSnapshot[T]) runOverlayWave() {
	d := s.d
	for r := 1; r < len(s.buckets); r++ {
		bucket := s.buckets[r]
		for i := 0; i < len(bucket); i++ {
			g := bucket[i]
			s.queued[g] = false
			newVal := s.recomputeOverlay(g)
			if d.s.Equal(newVal, s.resolveLocked(g)) {
				continue
			}
			s.overlay[g] = newVal
			s.markOverlay(g)
		}
		s.buckets[r] = bucket[:0]
	}
}

// recomputeOverlay computes gate g's value under the overlay from its
// children, given the changed-children list of the current wave.
func (s *DynSnapshot[T]) recomputeOverlay(g int) T {
	d := s.d
	switch Kind(d.p.kind[g]) {
	case KindMul:
		acc := d.s.One()
		for _, ch := range d.p.ChildIDs(g) {
			acc = d.s.Mul(acc, s.overlayValue(int(ch)))
		}
		return acc
	case KindAdd:
		return s.recomputeOverlayAdd(g)
	case KindPerm:
		return s.recomputeOverlayPerm(g)
	default:
		panic("circuit: snapshot overlay cannot recompute gate kind")
	}
}

func (s *DynSnapshot[T]) recomputeOverlayAdd(g int) T {
	d := s.d
	st := d.adders[g] // children and occurrences are immutable after build
	snapVal := s.resolveLocked(g)
	chs := s.changeCh[g]
	if d.ring != nil {
		acc := snapVal
		for _, ch := range chs {
			occ := int64(len(st.occurrences[ch]))
			if occ == 0 {
				continue
			}
			delta := d.ring.Add(s.overlayValue(ch), d.ring.Neg(s.resolveLocked(ch)))
			acc = d.ring.Add(acc, semiring.ScalarMul[T](d.ring, occ, delta))
		}
		return acc
	}
	// Without subtraction: if every changed child was zero at the snapshot,
	// the old sum simply gains the new summands (zero contributed nothing).
	allZero := true
	for _, ch := range chs {
		if !semiring.IsZero(d.s, s.resolveLocked(ch)) {
			allZero = false
			break
		}
	}
	if allZero {
		acc := snapVal
		for _, ch := range chs {
			occ := int64(len(st.occurrences[ch]))
			if occ == 0 {
				continue
			}
			acc = d.s.Add(acc, semiring.ScalarMul(d.s, occ, s.overlayValue(ch)))
		}
		return acc
	}
	// Fallback: re-sum the whole fan-in.
	acc := d.s.Zero()
	for _, ch := range st.children {
		acc = d.s.Add(acc, s.overlayValue(int(ch)))
	}
	return acc
}

func (s *DynSnapshot[T]) recomputeOverlayPerm(g int) T {
	d := s.d
	rows, cols := d.p.PermShape(g)
	colVals := make([][]T, cols)
	for c := range colVals {
		col := make([]T, rows)
		for r := range col {
			col[r] = d.s.Zero()
		}
		colVals[c] = col
	}
	d.p.ForEachPermEntry(g, func(row, col, gate int) {
		colVals[col][row] = s.overlayValue(gate)
	})
	return perm.PermColumns(d.s, rows, func(c int) []T { return colVals[c] }, cols)
}
