// Package semiring defines commutative semirings and a collection of
// concrete instances used throughout the library.
//
// The paper "Aggregate Queries on Sparse Databases" (Toruńczyk, PODS 2020)
// evaluates weighted queries over arbitrary commutative semirings.  A
// semiring here is a set S with two commutative, associative operations +
// and · with neutral elements 0 and 1, where · distributes over + and
// 0·s = 0 for all s.
//
// Circuits compiled by internal/compile are independent of the semiring;
// they are evaluated against any Semiring[T] implementation.  Additional
// capabilities are expressed as interface upgrades:
//
//   - Ring[T]    : additive inverses exist (enables constant-time permanent
//     maintenance via inclusion–exclusion, Lemma 15 of the paper).
//   - Finite[T]  : the carrier is finite (enables constant-time permanent
//     maintenance via column-type counting, Lemma 18).
//   - Ordered[T] : a total order compatible with the intended use of the
//     semiring (used by nested queries for comparison connectives).
package semiring

import (
	"fmt"
	"math/big"
)

// Semiring is a commutative semiring over carrier type T.
//
// Implementations must be value types that are cheap to copy; all operations
// must be free of side effects on their arguments.
type Semiring[T any] interface {
	// Zero returns the additive identity.
	Zero() T
	// One returns the multiplicative identity.
	One() T
	// Add returns a + b.
	Add(a, b T) T
	// Mul returns a · b.
	Mul(a, b T) T
	// Equal reports whether two elements are equal.  It is used by tests
	// and by zero-detection in dynamic data structures.
	Equal(a, b T) bool
	// Format renders an element for diagnostics.
	Format(a T) string
}

// Ring is a semiring with additive inverses.
type Ring[T any] interface {
	Semiring[T]
	// Neg returns the additive inverse of a.
	Neg(a T) T
}

// Finite is a semiring with a finite carrier.
type Finite[T any] interface {
	Semiring[T]
	// Elements enumerates every element of the carrier.
	Elements() []T
}

// Ordered is a semiring whose carrier has a natural total order.  It is used
// by nested weighted queries for comparison connectives such as < and ≤.
type Ordered[T any] interface {
	Semiring[T]
	// Less reports whether a < b in the natural order of the carrier.
	Less(a, b T) bool
}

// IsZero reports whether a equals the additive identity of s.
func IsZero[T any](s Semiring[T], a T) bool { return s.Equal(a, s.Zero()) }

// Iverson maps a boolean to 0 or 1 of the semiring (the Iverson bracket
// [·] of the paper).
func Iverson[T any](s Semiring[T], b bool) T {
	if b {
		return s.One()
	}
	return s.Zero()
}

// ScalarMul returns n·a, the n-fold sum a + a + ... + a, computed with
// O(log n) semiring additions (doubling).  n must be non-negative.  Unlike
// ScalarMulBig it performs no big.Int arithmetic, so it is allocation-free
// for allocation-free semirings and safe on update hot paths.
func ScalarMul[T any](s Semiring[T], n int64, a T) T {
	if n < 0 {
		panic("semiring: ScalarMul with negative multiplier")
	}
	result := s.Zero()
	acc := a
	for n > 0 {
		if n&1 == 1 {
			result = s.Add(result, acc)
		}
		n >>= 1
		if n > 0 {
			acc = s.Add(acc, acc)
		}
	}
	return result
}

// ScalarMulBig returns n·a for an arbitrary-precision non-negative n.
func ScalarMulBig[T any](s Semiring[T], n *big.Int, a T) T {
	if n.Sign() < 0 {
		panic("semiring: ScalarMulBig with negative multiplier")
	}
	result := s.Zero()
	acc := a
	// Binary decomposition of n, least significant bit first.
	m := new(big.Int).Set(n)
	zero := new(big.Int)
	two := big.NewInt(2)
	bit := new(big.Int)
	for m.Cmp(zero) > 0 {
		m.QuoRem(m, two, bit)
		if bit.Sign() != 0 {
			result = s.Add(result, acc)
		}
		if m.Cmp(zero) > 0 {
			acc = s.Add(acc, acc)
		}
	}
	return result
}

// Pow returns a^n with n ≥ 0, using O(log n) multiplications.
func Pow[T any](s Semiring[T], a T, n int64) T {
	if n < 0 {
		panic("semiring: Pow with negative exponent")
	}
	result := s.One()
	acc := a
	for n > 0 {
		if n&1 == 1 {
			result = s.Mul(result, acc)
		}
		acc = s.Mul(acc, acc)
		n >>= 1
	}
	return result
}

// Sum folds Add over a slice, returning Zero for an empty slice.
func Sum[T any](s Semiring[T], xs []T) T {
	acc := s.Zero()
	for _, x := range xs {
		acc = s.Add(acc, x)
	}
	return acc
}

// Product folds Mul over a slice, returning One for an empty slice.
func Product[T any](s Semiring[T], xs []T) T {
	acc := s.One()
	for _, x := range xs {
		acc = s.Mul(acc, x)
	}
	return acc
}

// ---------------------------------------------------------------------------
// Boolean semiring B = ({false,true}, ∨, ∧)
// ---------------------------------------------------------------------------

// Boolean is the two-element semiring ({false, true}, ∨, ∧).
type Boolean struct{}

// Bool is the canonical Boolean semiring instance.
var Bool = Boolean{}

func (Boolean) Zero() bool           { return false }
func (Boolean) One() bool            { return true }
func (Boolean) Add(a, b bool) bool   { return a || b }
func (Boolean) Mul(a, b bool) bool   { return a && b }
func (Boolean) Equal(a, b bool) bool { return a == b }
func (Boolean) Format(a bool) string { return fmt.Sprintf("%v", a) }
func (Boolean) Elements() []bool     { return []bool{false, true} }
func (Boolean) Less(a, b bool) bool  { return !a && b }

// ---------------------------------------------------------------------------
// Natural numbers (ℕ, +, ·) on int64
// ---------------------------------------------------------------------------

// Natural is the semiring (ℕ, +, ·) represented on int64.  Overflow is the
// caller's responsibility; use BigNat for arbitrary precision.
type Natural struct{}

// Nat is the canonical Natural semiring instance.
var Nat = Natural{}

func (Natural) Zero() int64           { return 0 }
func (Natural) One() int64            { return 1 }
func (Natural) Add(a, b int64) int64  { return a + b }
func (Natural) Mul(a, b int64) int64  { return a * b }
func (Natural) Equal(a, b int64) bool { return a == b }
func (Natural) Format(a int64) string { return fmt.Sprintf("%d", a) }
func (Natural) Less(a, b int64) bool  { return a < b }

// ---------------------------------------------------------------------------
// Integer ring (ℤ, +, ·) on int64
// ---------------------------------------------------------------------------

// IntRing is the ring (ℤ, +, ·) represented on int64.
type IntRing struct{}

// Int is the canonical IntRing instance.
var Int = IntRing{}

func (IntRing) Zero() int64           { return 0 }
func (IntRing) One() int64            { return 1 }
func (IntRing) Add(a, b int64) int64  { return a + b }
func (IntRing) Mul(a, b int64) int64  { return a * b }
func (IntRing) Neg(a int64) int64     { return -a }
func (IntRing) Equal(a, b int64) bool { return a == b }
func (IntRing) Format(a int64) string { return fmt.Sprintf("%d", a) }
func (IntRing) Less(a, b int64) bool  { return a < b }

// ---------------------------------------------------------------------------
// Big-integer semiring (ℕ or ℤ, +, ·) on *big.Int
// ---------------------------------------------------------------------------

// BigInt is the ring (ℤ, +, ·) on arbitrary-precision integers.  It is used
// when counts may exceed int64, e.g. counting answers of queries with many
// free variables on large databases.
type BigInt struct{}

// Big is the canonical BigInt instance.
var Big = BigInt{}

func (BigInt) Zero() *big.Int { return new(big.Int) }
func (BigInt) One() *big.Int  { return big.NewInt(1) }
func (BigInt) Add(a, b *big.Int) *big.Int {
	return new(big.Int).Add(a, b)
}
func (BigInt) Mul(a, b *big.Int) *big.Int {
	return new(big.Int).Mul(a, b)
}
func (BigInt) Neg(a *big.Int) *big.Int  { return new(big.Int).Neg(a) }
func (BigInt) Equal(a, b *big.Int) bool { return a.Cmp(b) == 0 }
func (BigInt) Format(a *big.Int) string { return a.String() }
func (BigInt) Less(a, b *big.Int) bool  { return a.Cmp(b) < 0 }

// ---------------------------------------------------------------------------
// Rational field (ℚ, +, ·) on *big.Rat
// ---------------------------------------------------------------------------

// Rational is the field (ℚ, +, ·) on *big.Rat.  Used for the PageRank
// example (Example 9) and probability computations (Example 4).
type Rational struct{}

// Rat is the canonical Rational instance.
var Rat = Rational{}

func (Rational) Zero() *big.Rat { return new(big.Rat) }
func (Rational) One() *big.Rat  { return big.NewRat(1, 1) }
func (Rational) Add(a, b *big.Rat) *big.Rat {
	return new(big.Rat).Add(a, b)
}
func (Rational) Mul(a, b *big.Rat) *big.Rat {
	return new(big.Rat).Mul(a, b)
}
func (Rational) Neg(a *big.Rat) *big.Rat  { return new(big.Rat).Neg(a) }
func (Rational) Equal(a, b *big.Rat) bool { return a.Cmp(b) == 0 }
func (Rational) Format(a *big.Rat) string { return a.RatString() }
func (Rational) Less(a, b *big.Rat) bool  { return a.Cmp(b) < 0 }

// ---------------------------------------------------------------------------
// Float ring (ℝ, +, ·) on float64
// ---------------------------------------------------------------------------

// FloatRing is the ring (ℝ, +, ·) on float64.  Exactness caveats apply; it
// exists for numeric workloads where big.Rat is too slow.
type FloatRing struct{}

// Float is the canonical FloatRing instance.
var Float = FloatRing{}

func (FloatRing) Zero() float64            { return 0 }
func (FloatRing) One() float64             { return 1 }
func (FloatRing) Add(a, b float64) float64 { return a + b }
func (FloatRing) Mul(a, b float64) float64 { return a * b }
func (FloatRing) Neg(a float64) float64    { return -a }
func (FloatRing) Equal(a, b float64) bool  { return a == b }
func (FloatRing) Format(a float64) string  { return fmt.Sprintf("%g", a) }
func (FloatRing) Less(a, b float64) bool   { return a < b }

// ---------------------------------------------------------------------------
// Extended integers with an infinity, shared by the tropical semirings
// ---------------------------------------------------------------------------

// Ext is an integer extended with an "infinite" element.  The meaning of the
// infinity (+∞ or −∞) depends on the semiring using it.
type Ext struct {
	// Inf marks the infinite element; V is ignored when Inf is set.
	Inf bool
	// V is the finite value.
	V int64
}

// Fin returns the finite extended integer v.
func Fin(v int64) Ext { return Ext{V: v} }

// Infinite is the infinite extended integer.
var Infinite = Ext{Inf: true}

func formatExt(a Ext, infSym string) string {
	if a.Inf {
		return infSym
	}
	return fmt.Sprintf("%d", a.V)
}

// ---------------------------------------------------------------------------
// MinPlus semiring (ℕ ∪ {+∞}, min, +): shortest paths / minimum cost
// ---------------------------------------------------------------------------

// MinPlusSemiring is the tropical semiring (ℤ ∪ {+∞}, min, +) in which the
// paper's example computes the minimum total cost of a directed triangle.
type MinPlusSemiring struct{}

// MinPlus is the canonical MinPlusSemiring instance.
var MinPlus = MinPlusSemiring{}

func (MinPlusSemiring) Zero() Ext { return Infinite }
func (MinPlusSemiring) One() Ext  { return Fin(0) }
func (MinPlusSemiring) Add(a, b Ext) Ext {
	switch {
	case a.Inf:
		return b
	case b.Inf:
		return a
	case a.V <= b.V:
		return a
	default:
		return b
	}
}
func (MinPlusSemiring) Mul(a, b Ext) Ext {
	if a.Inf || b.Inf {
		return Infinite
	}
	return Fin(a.V + b.V)
}
func (MinPlusSemiring) Equal(a, b Ext) bool {
	if a.Inf || b.Inf {
		return a.Inf == b.Inf
	}
	return a.V == b.V
}
func (MinPlusSemiring) Format(a Ext) string { return formatExt(a, "+inf") }
func (MinPlusSemiring) Less(a, b Ext) bool {
	// +∞ is the largest element.
	if a.Inf {
		return false
	}
	if b.Inf {
		return true
	}
	return a.V < b.V
}

// ---------------------------------------------------------------------------
// MaxPlus semiring (ℤ ∪ {−∞}, max, +): maximum reward
// ---------------------------------------------------------------------------

// MaxPlusSemiring is the semiring (ℤ ∪ {−∞}, max, +), used by the nested
// query example computing a maximum of averages.
type MaxPlusSemiring struct{}

// MaxPlus is the canonical MaxPlusSemiring instance.
var MaxPlus = MaxPlusSemiring{}

func (MaxPlusSemiring) Zero() Ext { return Infinite }
func (MaxPlusSemiring) One() Ext  { return Fin(0) }
func (MaxPlusSemiring) Add(a, b Ext) Ext {
	switch {
	case a.Inf:
		return b
	case b.Inf:
		return a
	case a.V >= b.V:
		return a
	default:
		return b
	}
}
func (MaxPlusSemiring) Mul(a, b Ext) Ext {
	if a.Inf || b.Inf {
		return Infinite
	}
	return Fin(a.V + b.V)
}
func (MaxPlusSemiring) Equal(a, b Ext) bool {
	if a.Inf || b.Inf {
		return a.Inf == b.Inf
	}
	return a.V == b.V
}
func (MaxPlusSemiring) Format(a Ext) string { return formatExt(a, "-inf") }
func (MaxPlusSemiring) Less(a, b Ext) bool {
	// −∞ is the smallest element.
	if b.Inf {
		return false
	}
	if a.Inf {
		return true
	}
	return a.V < b.V
}

// ---------------------------------------------------------------------------
// MinMax semiring (ℕ ∪ {+∞}, min, max): bottleneck optimisation
// ---------------------------------------------------------------------------

// MinMaxSemiring is the bottleneck semiring (ℕ ∪ {+∞}, min, max) listed in
// the paper's examples of semirings.
type MinMaxSemiring struct{}

// MinMax is the canonical MinMaxSemiring instance.
var MinMax = MinMaxSemiring{}

func (MinMaxSemiring) Zero() Ext { return Infinite }
func (MinMaxSemiring) One() Ext  { return Fin(0) }
func (MinMaxSemiring) Add(a, b Ext) Ext {
	switch {
	case a.Inf:
		return b
	case b.Inf:
		return a
	case a.V <= b.V:
		return a
	default:
		return b
	}
}
func (MinMaxSemiring) Mul(a, b Ext) Ext {
	if a.Inf || b.Inf {
		return Infinite
	}
	if a.V >= b.V {
		return a
	}
	return b
}
func (MinMaxSemiring) Equal(a, b Ext) bool {
	if a.Inf || b.Inf {
		return a.Inf == b.Inf
	}
	return a.V == b.V
}
func (MinMaxSemiring) Format(a Ext) string { return formatExt(a, "+inf") }

// ---------------------------------------------------------------------------
// Modular ring ℤ/m on int64, a finite (semi)ring
// ---------------------------------------------------------------------------

// Modular is the finite ring ℤ/m of integers modulo m > 0.
type Modular struct {
	// M is the modulus; must be positive.
	M int64
}

// NewModular returns the ring ℤ/m.
func NewModular(m int64) Modular {
	if m <= 0 {
		panic("semiring: modulus must be positive")
	}
	return Modular{M: m}
}

func (r Modular) norm(a int64) int64 {
	a %= r.M
	if a < 0 {
		a += r.M
	}
	return a
}

func (r Modular) Zero() int64          { return 0 }
func (r Modular) One() int64           { return r.norm(1) }
func (r Modular) Add(a, b int64) int64 { return r.norm(a + b) }
func (r Modular) Mul(a, b int64) int64 { return r.norm(a * b) }
func (r Modular) Neg(a int64) int64    { return r.norm(-a) }
func (r Modular) Equal(a, b int64) bool {
	return r.norm(a) == r.norm(b)
}
func (r Modular) Format(a int64) string { return fmt.Sprintf("%d (mod %d)", r.norm(a), r.M) }
func (r Modular) Elements() []int64 {
	out := make([]int64, r.M)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

// ---------------------------------------------------------------------------
// Bounded counting semiring: ℕ truncated at a cap, a finite semiring
// ---------------------------------------------------------------------------

// Truncated is the finite semiring {0, 1, ..., Cap} with saturating addition
// and multiplication ("count up to Cap").  It is useful for threshold
// queries ("are there at least t answers?") and exercises the
// finite-semiring fast path of the dynamic permanent (Lemma 18).
type Truncated struct {
	// Cap is the saturation bound; must be ≥ 1.
	Cap int64
}

// NewTruncated returns the counting semiring saturated at cap.
func NewTruncated(cap int64) Truncated {
	if cap < 1 {
		panic("semiring: truncation cap must be at least 1")
	}
	return Truncated{Cap: cap}
}

func (t Truncated) clamp(a int64) int64 {
	if a > t.Cap {
		return t.Cap
	}
	if a < 0 {
		return 0
	}
	return a
}

func (t Truncated) Zero() int64          { return 0 }
func (t Truncated) One() int64           { return 1 }
func (t Truncated) Add(a, b int64) int64 { return t.clamp(a + b) }
func (t Truncated) Mul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > t.Cap/b+1 {
		return t.Cap
	}
	return t.clamp(a * b)
}
func (t Truncated) Equal(a, b int64) bool { return t.clamp(a) == t.clamp(b) }
func (t Truncated) Format(a int64) string { return fmt.Sprintf("%d", t.clamp(a)) }
func (t Truncated) Less(a, b int64) bool  { return t.clamp(a) < t.clamp(b) }
func (t Truncated) Elements() []int64 {
	out := make([]int64, t.Cap+1)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

// ---------------------------------------------------------------------------
// Set semiring (P(U), ∪, ∩) over a universe of at most 64 points
// ---------------------------------------------------------------------------

// SetAlgebra is the boolean algebra (P(U), ∪, ∩) over a universe of size at
// most 64, represented as bit masks.  It is one of the paper's examples of a
// semiring and is finite, exercising the finite-semiring machinery.
type SetAlgebra struct {
	// Universe is the number of points in the universe, at most 64.
	Universe uint
}

// NewSetAlgebra returns the boolean algebra over a universe of size n ≤ 64.
func NewSetAlgebra(n uint) SetAlgebra {
	if n > 64 {
		panic("semiring: set algebra universe limited to 64 points")
	}
	return SetAlgebra{Universe: n}
}

func (s SetAlgebra) full() uint64 {
	if s.Universe == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << s.Universe) - 1
}

func (s SetAlgebra) Zero() uint64           { return 0 }
func (s SetAlgebra) One() uint64            { return s.full() }
func (s SetAlgebra) Add(a, b uint64) uint64 { return (a | b) & s.full() }
func (s SetAlgebra) Mul(a, b uint64) uint64 { return a & b & s.full() }
func (s SetAlgebra) Equal(a, b uint64) bool { return a&s.full() == b&s.full() }
func (s SetAlgebra) Format(a uint64) string { return fmt.Sprintf("%#x", a&s.full()) }
func (s SetAlgebra) Elements() []uint64 {
	if s.Universe > 16 {
		panic("semiring: enumerating a set algebra with more than 16 points")
	}
	out := make([]uint64, 1<<s.Universe)
	for i := range out {
		out[i] = uint64(i)
	}
	return out
}
