package dbio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/logic"
	"repro/internal/semiring"
	"repro/internal/structure"
	"repro/internal/workload"
)

func triangleQuery() expr.Expr {
	return expr.Agg([]string{"x", "y", "z"}, expr.Times(
		expr.Guard(logic.Conj(logic.R("E", "x", "y"), logic.R("E", "y", "z"), logic.R("E", "z", "x"))),
		expr.W("w", "x", "y"), expr.W("w", "y", "z"), expr.W("w", "z", "x"),
	))
}

func TestRoundTripWorkloadDatabase(t *testing.T) {
	db := workload.BoundedDegree(80, 3, 7)
	weights := db.Weights()

	var buf bytes.Buffer
	if err := Write(&buf, db.A, weights); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}

	if got.A.N != db.A.N {
		t.Fatalf("domain size %d, want %d", got.A.N, db.A.N)
	}
	if got.A.TupleCount() != db.A.TupleCount() {
		t.Fatalf("tuple count %d, want %d", got.A.TupleCount(), db.A.TupleCount())
	}
	for _, rel := range db.A.Sig.Relations {
		for _, tup := range db.A.Tuples(rel.Name) {
			if !got.A.HasTuple(rel.Name, tup...) {
				t.Fatalf("tuple %s%v lost in round trip", rel.Name, tup)
			}
		}
	}
	if got.W.Len() != weights.Len() {
		t.Fatalf("weight count %d, want %d", got.W.Len(), weights.Len())
	}

	// The weighted triangle count must be identical on both copies.
	env := map[string]structure.Element{}
	want := expr.Eval[int64](semiring.Nat, db.A, weights, triangleQuery(), env)
	have := expr.Eval[int64](semiring.Nat, got.A, got.W, triangleQuery(), env)
	if want != have {
		t.Fatalf("triangle count changed in round trip: %d vs %d", have, want)
	}
}

func TestWriteIsDeterministic(t *testing.T) {
	db := workload.Grid(8, 8, 3)
	var a, b bytes.Buffer
	if err := Write(&a, db.A, db.Weights()); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, db.A, db.Weights()); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("Write output is not deterministic")
	}
}

func TestReadSmallDatabase(t *testing.T) {
	input := `
# a tiny database
domain 4
rel E 2
rel S 1
wsym w 2
wsym u 1
E 0 1
E 1 2   # trailing comment
S 3
w 0 1 7
u 3 -2
`
	db, err := Read(strings.NewReader(input))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if db.A.N != 4 {
		t.Errorf("domain = %d, want 4", db.A.N)
	}
	if !db.A.HasTuple("E", 0, 1) || !db.A.HasTuple("E", 1, 2) || !db.A.HasTuple("S", 3) {
		t.Errorf("missing tuples after Read")
	}
	if v, ok := db.W.Get("w", structure.Tuple{0, 1}); !ok || v != 7 {
		t.Errorf("w(0,1) = %d,%v want 7", v, ok)
	}
	if v, ok := db.W.Get("u", structure.Tuple{3}); !ok || v != -2 {
		t.Errorf("u(3) = %d,%v want -2", v, ok)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"tuple before domain", "rel E 2\nE 0 1\n"},
		{"unknown symbol", "domain 3\nrel E 2\nF 0 1\n"},
		{"bad arity", "domain 3\nrel E 2\nE 0 1 2\n"},
		{"element out of range", "domain 3\nrel E 2\nE 0 9\n"},
		{"negative element", "domain 3\nrel E 2\nE 0 -1\n"},
		{"bad weight value", "domain 3\nrel E 2\nwsym w 2\nE 0 1\nw 0 1 xyz\n"},
		{"duplicate domain", "domain 3\ndomain 4\n"},
		{"declaration after tuples", "domain 3\nrel E 2\nE 0 1\nrel F 1\n"},
		{"bad domain", "domain minusone\n"},
		{"declaration arity missing", "domain 3\nrel E\n"},
		{"no domain at all", "rel E 2\n"},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.input)); err == nil {
			t.Errorf("%s: Read unexpectedly succeeded", c.name)
		}
	}
}

func TestReadWriteFile(t *testing.T) {
	db := workload.Forest(100, 3, 5)
	path := filepath.Join(t.TempDir(), "db.txt")
	if err := WriteFile(path, db.A, db.Weights()); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if got.A.TupleCount() != db.A.TupleCount() {
		t.Fatalf("tuple count %d, want %d", got.A.TupleCount(), db.A.TupleCount())
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Errorf("ReadFile of a missing file should fail")
	}
}

func TestConvertWeights(t *testing.T) {
	w := structure.NewWeights[int64]()
	w.Set("w", structure.Tuple{0, 1}, 5)
	w.Set("u", structure.Tuple{2}, 0)
	mp := ConvertWeights(w, func(v int64) semiring.Ext { return semiring.Fin(v) })
	if v, ok := mp.Get("w", structure.Tuple{0, 1}); !ok || !semiring.MinPlus.Equal(v, semiring.Fin(5)) {
		t.Errorf("converted weight w(0,1) = %v, %v", v, ok)
	}
	if v, ok := mp.Get("u", structure.Tuple{2}); !ok || !semiring.MinPlus.Equal(v, semiring.Fin(0)) {
		t.Errorf("converted weight u(2) = %v, %v", v, ok)
	}
	if mp.Len() != w.Len() {
		t.Errorf("converted weight count %d, want %d", mp.Len(), w.Len())
	}
}

func TestLoadCSVRelationAndWeights(t *testing.T) {
	sig := structure.MustSignature(
		[]structure.RelSymbol{{Name: "E", Arity: 2}},
		[]structure.WeightSymbol{{Name: "w", Arity: 2}},
	)
	a := structure.NewStructure(sig, 5)
	added, err := LoadCSVRelation(a, "E", strings.NewReader("0,1\n1,2\n2, 3\n"))
	if err != nil {
		t.Fatalf("LoadCSVRelation: %v", err)
	}
	if added != 3 || !a.HasTuple("E", 2, 3) {
		t.Fatalf("expected 3 edges loaded, got %d", added)
	}

	w := structure.NewWeights[int64]()
	set, err := LoadCSVWeights(a, w, "w", strings.NewReader("0,1,10\n1,2,20\n"))
	if err != nil {
		t.Fatalf("LoadCSVWeights: %v", err)
	}
	if set != 2 {
		t.Fatalf("expected 2 weights, got %d", set)
	}
	if v, _ := w.Get("w", structure.Tuple{1, 2}); v != 20 {
		t.Fatalf("w(1,2) = %d, want 20", v)
	}

	// Error cases: unknown symbols, wrong column counts, bad elements.
	if _, err := LoadCSVRelation(a, "F", strings.NewReader("0,1\n")); err == nil {
		t.Errorf("unknown relation should fail")
	}
	if _, err := LoadCSVRelation(a, "E", strings.NewReader("0,1,2\n")); err == nil {
		t.Errorf("wrong arity should fail")
	}
	if _, err := LoadCSVRelation(a, "E", strings.NewReader("0,9\n")); err == nil {
		t.Errorf("out-of-range element should fail")
	}
	if _, err := LoadCSVWeights(a, w, "missing", strings.NewReader("0,1,1\n")); err == nil {
		t.Errorf("unknown weight symbol should fail")
	}
	if _, err := LoadCSVWeights(a, w, "w", strings.NewReader("0,1\n")); err == nil {
		t.Errorf("missing value column should fail")
	}
	if _, err := LoadCSVWeights(a, w, "w", strings.NewReader("0,1,ten\n")); err == nil {
		t.Errorf("non-numeric value should fail")
	}
}
