package perm

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/semiring"
)

func randomNatMatrix(r *rand.Rand, rows, cols int) *Matrix[int64] {
	m := NewMatrix[int64](semiring.Nat, rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, int64(r.Intn(4)))
		}
	}
	return m
}

func TestPermSmallExamples(t *testing.T) {
	s := semiring.Nat
	// 1×n matrix: permanent is the sum of the entries.
	m := NewMatrix[int64](s, 1, 4)
	for j := 0; j < 4; j++ {
		m.Set(0, j, int64(j+1))
	}
	if got := Perm[int64](s, m); got != 10 {
		t.Errorf("perm of 1×4 = %d, want 10", got)
	}
	// 2×2 matrix [[a,b],[c,d]]: permanent is ad + bc.
	m2 := NewMatrix[int64](s, 2, 2)
	m2.Set(0, 0, 2)
	m2.Set(0, 1, 3)
	m2.Set(1, 0, 5)
	m2.Set(1, 1, 7)
	if got := Perm[int64](s, m2); got != 2*7+3*5 {
		t.Errorf("perm of 2×2 = %d, want %d", got, 2*7+3*5)
	}
	// k > n gives zero.
	m3 := NewMatrix[int64](s, 3, 2)
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			m3.Set(i, j, 1)
		}
	}
	if got := Perm[int64](s, m3); got != 0 {
		t.Errorf("perm with more rows than columns = %d, want 0", got)
	}
	// 0 rows gives one.
	m4 := NewMatrix[int64](s, 0, 5)
	if got := Perm[int64](s, m4); got != 1 {
		t.Errorf("perm of empty-row matrix = %d, want 1", got)
	}
	// All-ones 3×5: number of injective maps = 5·4·3.
	m5 := NewMatrix[int64](s, 3, 5)
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			m5.Set(i, j, 1)
		}
	}
	if got := Perm[int64](s, m5); got != 60 {
		t.Errorf("perm of all-ones 3×5 = %d, want 60", got)
	}
}

func TestPermMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		rows := r.Intn(4) + 1
		cols := r.Intn(6) + 1
		m := randomNatMatrix(r, rows, cols)
		want := PermNaive[int64](semiring.Nat, m)
		if got := Perm[int64](semiring.Nat, m); got != want {
			t.Fatalf("Perm = %d, PermNaive = %d (rows=%d cols=%d)", got, want, rows, cols)
		}
		got2 := PermColumns[int64](semiring.Nat, rows, m.Column, cols)
		if got2 != want {
			t.Fatalf("PermColumns = %d, want %d", got2, want)
		}
	}
}

func TestPermMinPlusIsAssignmentProblem(t *testing.T) {
	// In the min-plus semiring the permanent is the minimum-cost assignment
	// of rows to distinct columns.
	s := semiring.MinPlus
	m := NewMatrix[semiring.Ext](s, 2, 3)
	costs := [2][3]int64{{4, 1, 9}, {2, 8, 3}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			m.Set(i, j, semiring.Fin(costs[i][j]))
		}
	}
	// Best assignment: row0→col1 (1), row1→col0 (2) = 3.
	if got := Perm[semiring.Ext](s, m); !s.Equal(got, semiring.Fin(3)) {
		t.Errorf("min-plus permanent = %v, want 3", got)
	}
}

func TestPermBooleanIsMatching(t *testing.T) {
	// In the boolean semiring the permanent asks for a system of distinct
	// representatives (a perfect matching of rows into columns).
	s := semiring.Bool
	m := NewMatrix[bool](s, 2, 2)
	m.Set(0, 0, true)
	m.Set(1, 0, true)
	// Both rows only compatible with column 0: no matching.
	if Perm[bool](s, m) {
		t.Errorf("boolean permanent should be false without a matching")
	}
	m.Set(1, 1, true)
	if !Perm[bool](s, m) {
		t.Errorf("boolean permanent should be true once a matching exists")
	}
}

// exerciseMaintainer applies random updates to a maintainer and cross-checks
// the value against recomputation from scratch in the same semiring.
func exerciseMaintainer(t *testing.T, name string, r *rand.Rand, ref semiring.Semiring[int64], mk func(m *Matrix[int64]) Maintainer[int64], genValue func() int64) {
	t.Helper()
	for trial := 0; trial < 30; trial++ {
		rows := r.Intn(3) + 1
		cols := r.Intn(8) + 1
		m := NewMatrix[int64](ref, rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, genValue())
			}
		}
		d := mk(m)
		gotRows, gotCols := d.Dims()
		if gotRows != rows || gotCols != cols {
			t.Fatalf("%s: Dims = (%d,%d), want (%d,%d)", name, gotRows, gotCols, rows, cols)
		}
		if got, want := d.Value(), Perm[int64](ref, m); !ref.Equal(got, want) {
			t.Fatalf("%s: initial value %d, want %d", name, got, want)
		}
		for step := 0; step < 20; step++ {
			row, col := r.Intn(rows), r.Intn(cols)
			v := genValue()
			d.Update(row, col, v)
			m.Set(row, col, v)
			if d.At(row, col) != v {
				t.Fatalf("%s: At after update = %d, want %d", name, d.At(row, col), v)
			}
			if got, want := d.Value(), Perm[int64](ref, m); !ref.Equal(got, want) {
				t.Fatalf("%s: after update value %d, want %d (rows=%d cols=%d)", name, got, want, rows, cols)
			}
		}
	}
}

func TestDynamicGeneric(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	exerciseMaintainer(t, "Dynamic", r, semiring.Nat,
		func(m *Matrix[int64]) Maintainer[int64] { return NewDynamic[int64](semiring.Nat, m) },
		func() int64 { return int64(r.Intn(5)) })
}

func TestRingDynamic(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	exerciseMaintainer(t, "RingDynamic", r, semiring.Int,
		func(m *Matrix[int64]) Maintainer[int64] { return NewRingDynamic[int64](semiring.Int, m) },
		func() int64 { return int64(r.Intn(7) - 3) })
}

func TestFiniteDynamic(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	mod5 := semiring.NewModular(5)
	exerciseMaintainer(t, "FiniteDynamic", r, mod5,
		func(m *Matrix[int64]) Maintainer[int64] { return NewFiniteDynamic[int64](mod5, m) },
		func() int64 { return int64(r.Intn(5)) })
}

func TestFiniteDynamicTruncated(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	tr := semiring.NewTruncated(6)
	exerciseMaintainer(t, "FiniteDynamicTruncated", r, tr,
		func(m *Matrix[int64]) Maintainer[int64] { return NewFiniteDynamic[int64](tr, m) },
		func() int64 { return int64(r.Intn(4)) })
}

func TestFiniteDynamicBooleanMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	for trial := 0; trial < 40; trial++ {
		rows := r.Intn(3) + 1
		cols := r.Intn(7) + 1
		m := NewMatrix[bool](semiring.Bool, rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, r.Intn(2) == 0)
			}
		}
		d := NewFiniteDynamic[bool](semiring.Bool, m)
		if got, want := d.Value(), PermNaive[bool](semiring.Bool, m); got != want {
			t.Fatalf("boolean finite dynamic: %v, want %v", got, want)
		}
		for step := 0; step < 10; step++ {
			row, col := r.Intn(rows), r.Intn(cols)
			v := r.Intn(2) == 0
			d.Update(row, col, v)
			m.Set(row, col, v)
			if got, want := d.Value(), PermNaive[bool](semiring.Bool, m); got != want {
				t.Fatalf("boolean finite dynamic after update: %v, want %v", got, want)
			}
		}
	}
}

func TestDynamicMinPlus(t *testing.T) {
	// The generic maintainer must work for the min-plus semiring, which is
	// neither a ring nor finite (this is the case where logarithmic updates
	// are provably necessary, Proposition 14).
	r := rand.New(rand.NewSource(23))
	s := semiring.MinPlus
	for trial := 0; trial < 20; trial++ {
		rows := r.Intn(3) + 1
		cols := r.Intn(8) + 1
		m := NewMatrix[semiring.Ext](s, rows, cols)
		gen := func() semiring.Ext {
			if r.Intn(5) == 0 {
				return semiring.Infinite
			}
			return semiring.Fin(int64(r.Intn(20)))
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, gen())
			}
		}
		d := NewDynamic[semiring.Ext](s, m)
		if got, want := d.Value(), PermNaive[semiring.Ext](s, m); !s.Equal(got, want) {
			t.Fatalf("min-plus dynamic initial: %v, want %v", got, want)
		}
		for step := 0; step < 15; step++ {
			row, col := r.Intn(rows), r.Intn(cols)
			v := gen()
			d.Update(row, col, v)
			m.Set(row, col, v)
			if got, want := d.Value(), PermNaive[semiring.Ext](s, m); !s.Equal(got, want) {
				t.Fatalf("min-plus dynamic after update: %v, want %v", got, want)
			}
		}
	}
}

func TestRingDynamicRational(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	s := semiring.Rat
	m := NewMatrix[*big.Rat](s, 3, 6)
	gen := func() *big.Rat { return big.NewRat(int64(r.Intn(9)-4), int64(r.Intn(3)+1)) }
	for i := 0; i < 3; i++ {
		for j := 0; j < 6; j++ {
			m.Set(i, j, gen())
		}
	}
	d := NewRingDynamic[*big.Rat](s, m)
	if got, want := d.Value(), PermNaive[*big.Rat](s, m); !s.Equal(got, want) {
		t.Fatalf("rational ring dynamic initial: %s, want %s", s.Format(got), s.Format(want))
	}
	for step := 0; step < 10; step++ {
		row, col := r.Intn(3), r.Intn(6)
		v := gen()
		d.Update(row, col, v)
		m.Set(row, col, v)
		if got, want := d.Value(), PermNaive[*big.Rat](s, m); !s.Equal(got, want) {
			t.Fatalf("rational ring dynamic after update: %s, want %s", s.Format(got), s.Format(want))
		}
	}
}

func TestSetPartitions(t *testing.T) {
	// Bell numbers: 1, 1, 2, 5, 15.
	for k, want := range map[int]int{0: 1, 1: 1, 2: 2, 3: 5, 4: 15} {
		parts, coeffs := setPartitions(k)
		if len(parts) != want || len(coeffs) != want {
			t.Errorf("setPartitions(%d) produced %d partitions, want %d", k, len(parts), want)
		}
	}
	// For k=2 the coefficients are +1 (two singletons) and −1 (one pair).
	parts, coeffs := setPartitions(2)
	pos, neg := 0, 0
	for i := range parts {
		if coeffs[i].Sign() > 0 {
			pos++
		} else {
			neg++
		}
	}
	if pos != 1 || neg != 1 {
		t.Errorf("unexpected coefficient signs for k=2: %v", coeffs)
	}
}

func TestMatrixHelpers(t *testing.T) {
	m := NewMatrix[int64](semiring.Nat, 2, 3)
	m.Set(1, 2, 9)
	c := m.Clone()
	c.Set(1, 2, 4)
	if m.At(1, 2) != 9 {
		t.Errorf("Clone aliases original")
	}
	col := m.Column(2)
	if len(col) != 2 || col[1] != 9 {
		t.Errorf("Column = %v", col)
	}
}
