// Batch updates: maintain a compiled weighted query under a stream of
// weight and tuple changes, applying them one at a time and in atomic
// batches, and compare the two (identical results, one propagation wave per
// batch instead of one per update).
//
//	go run ./examples/batchupdates
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/compile"
	"repro/internal/dynamicq"
	"repro/internal/expr"
	"repro/internal/logic"
	"repro/internal/semiring"
	"repro/internal/structure"
	"repro/internal/workload"
)

func main() {
	// A preferential-attachment graph: a few high-degree hubs, many leaves —
	// the shape under which hot-key update streams concentrate on vertices
	// with large propagation cones.
	db := workload.PreferentialAttachment(3000, 2, 7)
	fmt.Printf("database: %d elements, %d tuples\n", db.A.N, db.A.TupleCount())

	// Weighted 2-paths with distinct endpoints, with E declared dynamic so
	// tuple updates are allowed too:
	//   f = Σ_{x,y,z} [E(x,y) ∧ E(y,z) ∧ x≠z] · u(x) · u(z).
	f := expr.Agg([]string{"x", "y", "z"}, expr.Times(
		expr.Guard(logic.Conj(logic.R("E", "x", "y"), logic.R("E", "y", "z"), logic.Neg(logic.Equal("x", "z")))),
		expr.W("u", "x"), expr.W("u", "z"),
	))
	opts := compile.Options{DynamicRelations: []string{"E"}}

	// Two queries over one shared compilation (Theorem 6 is paid once).
	sh, err := dynamicq.CompileShared(db.A, f, opts)
	if err != nil {
		panic(err)
	}
	perQ := dynamicq.NewQuery[int64](semiring.Nat, sh, db.Weights())
	batchQ := dynamicq.NewQuery[int64](semiring.Nat, sh, db.Weights())
	v0, _ := perQ.ValueClosed()
	fmt.Printf("initial weighted 2-path count: %d\n\n", v0)

	// A hot-key stream: weight updates concentrated on the 32 highest-degree
	// vertices, plus occasional Gaifman-preserving edge toggles.
	deg := make([]int, db.A.N)
	edges := db.A.Tuples("E")
	for _, e := range edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	hubs := make([]structure.Element, 0, 32)
	for v := 0; v < db.A.N && len(hubs) < 32; v++ {
		if deg[v] >= 8 {
			hubs = append(hubs, v)
		}
	}
	r := rand.New(rand.NewSource(1))
	const total = 20000
	stream := make([]dynamicq.Change[int64], total)
	for i := range stream {
		if i%50 == 49 {
			// Toggling an existing edge preserves the Gaifman graph.
			e := edges[r.Intn(len(edges))]
			stream[i] = dynamicq.TupleChange[int64]("E", e, r.Intn(2) == 0)
		} else {
			hub := hubs[r.Intn(len(hubs))]
			stream[i] = dynamicq.WeightChange("u", structure.Tuple{hub}, int64(r.Intn(9)+1))
		}
	}

	// One propagation wave per update...
	start := time.Now()
	for _, ch := range stream {
		var err error
		if ch.Weight != "" {
			err = perQ.SetWeight(ch.Weight, ch.Tuple, ch.Value)
		} else {
			err = perQ.SetTuple(ch.Rel, ch.Tuple, ch.Present)
		}
		if err != nil {
			panic(err)
		}
	}
	perDur := time.Since(start)

	// ...versus one wave per batch of 1000: leaf changes are applied first
	// (duplicates coalesce, the last value wins) and every affected gate is
	// recomputed exactly once per batch, in topological-rank order.
	const batchSize = 1000
	start = time.Now()
	for lo := 0; lo < len(stream); lo += batchSize {
		hi := lo + batchSize
		if hi > len(stream) {
			hi = len(stream)
		}
		if err := batchQ.ApplyBatch(stream[lo:hi]); err != nil {
			panic(err)
		}
	}
	batchDur := time.Since(start)

	perVal, _ := perQ.ValueClosed()
	batchVal, _ := batchQ.ValueClosed()
	fmt.Printf("per-update loop: %d updates in %v (%.0f upd/s) → value %d\n",
		total, perDur.Round(time.Millisecond), float64(total)/perDur.Seconds(), perVal)
	fmt.Printf("ApplyBatch(%d):  %d updates in %v (%.0f upd/s) → value %d\n",
		batchSize, total, batchDur.Round(time.Millisecond), float64(total)/batchDur.Seconds(), batchVal)
	if perVal != batchVal {
		panic("batched and per-update application disagree")
	}
	fmt.Printf("speedup: %.1fx, identical values\n\n", float64(perDur)/float64(batchDur))

	// Batches are all-or-nothing: one invalid change rejects the whole batch.
	err = batchQ.ApplyBatch([]dynamicq.Change[int64]{
		dynamicq.WeightChange("u", structure.Tuple{hubs[0]}, int64(99)),
		dynamicq.WeightChange("nope", structure.Tuple{0}, int64(1)),
	})
	fmt.Printf("invalid batch rejected atomically: %v\n", err)
	after, _ := batchQ.ValueClosed()
	fmt.Printf("value unchanged by the rejected batch: %d\n", after)
}
