package localsearch

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/logic"
	"repro/internal/structure"
)

func pathGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func cycleGraph(n int) *graph.Graph {
	g := pathGraph(n)
	if n > 2 {
		g.AddEdge(n-1, 0)
	}
	return g
}

func gridGraph(w, h int) *graph.Graph {
	g := graph.New(w * h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				g.AddEdge(id(x, y), id(x+1, y))
			}
			if y+1 < h {
				g.AddEdge(id(x, y), id(x, y+1))
			}
		}
	}
	return g
}

func starGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	return g
}

func randomSparse(n, m int, seed int64) *graph.Graph {
	g := graph.New(n)
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < m; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.AddEdge(u, v)
		}
	}
	return g
}

func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"path10":    pathGraph(10),
		"cycle9":    cycleGraph(9),
		"grid8x8":   gridGraph(8, 8),
		"star20":    starGraph(20),
		"sparse100": randomSparse(100, 150, 4),
		"edgeless":  graph.New(7),
		"single":    graph.New(1),
	}
}

func TestMaximalIndependentSet(t *testing.T) {
	for name, g := range testGraphs() {
		res, err := MaximalIndependentSet(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !IsMaximalIndependentSet(g, res.Solution) {
			t.Errorf("%s: solution of size %d is not a maximal independent set", name, len(res.Solution))
		}
		if res.Stats.Rounds != len(res.Solution) {
			t.Errorf("%s: %d rounds but %d vertices selected", name, res.Stats.Rounds, len(res.Solution))
		}
	}
}

func TestMaximalIndependentSetKnownSizes(t *testing.T) {
	// On an edgeless graph the whole vertex set is selected.
	res, err := MaximalIndependentSet(graph.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solution) != 5 {
		t.Errorf("edgeless graph: got %d vertices, want 5", len(res.Solution))
	}
	// On a star, either the centre alone or all leaves form the only maximal
	// independent sets.
	res, err = MaximalIndependentSet(starGraph(10))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Solution); got != 1 && got != 9 {
		t.Errorf("star: maximal independent set size %d, want 1 or 9", got)
	}
	// A path with n vertices has maximal independent sets of size ≥ ⌈n/3⌉.
	res, err = MaximalIndependentSet(pathGraph(12))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solution) < 4 {
		t.Errorf("path12: maximal independent set size %d below the ⌈n/3⌉ bound", len(res.Solution))
	}
}

func TestMinimalDominatingSet(t *testing.T) {
	for name, g := range testGraphs() {
		res, err := MinimalDominatingSet(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !IsDominatingSet(g, res.Solution) {
			t.Errorf("%s: solution does not dominate the graph", name)
		}
		if !IsMinimalDominatingSet(g, res.Solution) {
			t.Errorf("%s: solution of size %d is not inclusion-minimal", name, len(res.Solution))
		}
	}
}

func TestMinimalDominatingSetKnownSizes(t *testing.T) {
	// A star has exactly two inclusion-minimal dominating sets: the centre
	// alone, or all the leaves.
	res, err := MinimalDominatingSet(starGraph(15))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Solution); got != 1 && got != 14 {
		t.Errorf("star: dominating set size %d, want 1 or 14", got)
	}
	// An edgeless graph needs every vertex.
	res, err = MinimalDominatingSet(graph.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solution) != 4 {
		t.Errorf("edgeless: dominating set size %d, want 4", len(res.Solution))
	}
	// A path on 3k vertices has domination number k.
	res, err = MinimalDominatingSet(pathGraph(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solution) < 3 || len(res.Solution) > 5 {
		t.Errorf("path9: dominating set size %d outside [3,5]", len(res.Solution))
	}
}

func TestSearcherCustomImprovement(t *testing.T) {
	// A custom rule: repeatedly select an edge (x, y) with both endpoints
	// unmatched and mark both endpoints, producing a maximal matching.
	g := gridGraph(6, 6)
	rels := []structure.RelSymbol{{Name: "E", Arity: 2}, {Name: "M", Arity: 1}}
	a := structure.NewStructure(structure.MustSignature(rels, nil), g.N())
	for _, e := range g.Edges() {
		a.MustAddTuple("E", e[0], e[1])
		a.MustAddTuple("E", e[1], e[0])
	}
	phi := logic.Conj(logic.R("E", "x", "y"), logic.Neg(logic.R("M", "x")), logic.Neg(logic.R("M", "y")))
	s, err := New(a, phi, []string{"x", "y"}, []string{"M"})
	if err != nil {
		t.Fatal(err)
	}
	matched := make([]bool, g.N())
	edges := 0
	for {
		tup, ok := s.FindImprovement()
		if !ok {
			break
		}
		x, y := tup[0], tup[1]
		if matched[x] || matched[y] || !g.HasEdge(x, y) {
			t.Fatalf("improvement (%d,%d) violates the matching invariant", x, y)
		}
		matched[x], matched[y] = true, true
		edges++
		if err := s.Apply("M", structure.Tuple{x}, true); err != nil {
			t.Fatal(err)
		}
		if err := s.Apply("M", structure.Tuple{y}, true); err != nil {
			t.Fatal(err)
		}
	}
	if edges == 0 {
		t.Fatal("no matching edges found on a 6x6 grid")
	}
	// Maximality: every edge has a matched endpoint.
	for _, e := range g.Edges() {
		if !matched[e[0]] && !matched[e[1]] {
			t.Fatalf("edge (%d,%d) could still be added to the matching", e[0], e[1])
		}
	}
	if s.Rounds() != edges {
		t.Errorf("rounds = %d, edges = %d", s.Rounds(), edges)
	}
}

func TestSearcherRejectsUnknownDynamicRelation(t *testing.T) {
	g := pathGraph(4)
	a := graphStructure(g, "S")
	s, err := New(a, logic.Neg(logic.R("S", "x")), []string{"x"}, []string{"S"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Apply("T", structure.Tuple{0}, true); err == nil {
		t.Errorf("applying an update to an undeclared relation should fail")
	}
}

func TestVerifierHelpers(t *testing.T) {
	g := pathGraph(5) // 0-1-2-3-4
	if !IsIndependentSet(g, []int{0, 2, 4}) {
		t.Errorf("{0,2,4} should be independent on a path")
	}
	if IsIndependentSet(g, []int{0, 1}) {
		t.Errorf("{0,1} should not be independent")
	}
	if !IsMaximalIndependentSet(g, []int{0, 2, 4}) {
		t.Errorf("{0,2,4} should be maximal")
	}
	if IsMaximalIndependentSet(g, []int{0, 4}) {
		t.Errorf("{0,4} is not maximal (vertex 2 can be added)")
	}
	if !IsDominatingSet(g, []int{1, 3}) {
		t.Errorf("{1,3} should dominate the path")
	}
	if IsDominatingSet(g, []int{0}) {
		t.Errorf("{0} should not dominate the path")
	}
	if !IsMinimalDominatingSet(g, []int{1, 3}) {
		t.Errorf("{1,3} should be a minimal dominating set")
	}
	if IsMinimalDominatingSet(g, []int{0, 1, 3}) {
		t.Errorf("{0,1,3} is not minimal (0 is redundant)")
	}
}
