package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/agg"
	"repro/internal/server"
	"repro/internal/workload"
)

const edgeSum = "sum x, y . [E(x,y)] * w(x,y)"

// startFleet spins up n replicas (each mounting the same grid workload as
// "default") behind an in-process router with fast health probes.
func startFleet(t *testing.T, n int) *LocalFleet {
	t.Helper()
	db := workload.Grid(6, 6, 7)
	f, err := StartLocal(n, LocalOptions{
		Server: server.Options{CacheSize: 32, Workers: 2},
		Configure: func(i int, s *server.Server) {
			s.MountDatabaseValue("default", agg.FromStructure(db.A, db.Weights()))
		},
		Router: Options{HealthInterval: 25 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

func postJSON(t *testing.T, url string, body any) (map[string]any, int) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response of %s: %v", url, err)
	}
	return out, resp.StatusCode
}

// TestStickySessionAcrossConcurrentClients: a named session is created once
// through the router, then 12 concurrent clients mix point reads and
// updates against it.  Sticky routing means every request lands on the one
// replica holding the session — any stray would 404 (the session exists
// nowhere else) — and afterwards exactly one replica carries all the
// traffic.
func TestStickySessionAcrossConcurrentClients(t *testing.T) {
	f := startFleet(t, 3)

	if out, code := postJSON(t, f.URL()+"/session", map[string]any{
		"name": "steady", "expr": edgeSum, "dynamic": []string{"E"},
	}); code != http.StatusOK {
		t.Fatalf("creating session: %d %v", code, out)
	}

	const clients, perClient = 12, 20
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				var out map[string]any
				var code int
				if i%4 == 3 {
					out, code = postJSON(t, f.URL()+"/update", map[string]any{
						"session": "steady",
						"updates": []map[string]any{{"weight": "w", "tuple": []int{0, 1}, "value": c*perClient + i}},
					})
				} else {
					out, code = postJSON(t, f.URL()+"/point", map[string]any{"session": "steady"})
				}
				if code != http.StatusOK {
					errs <- fmt.Errorf("client %d request %d: status %d (%v)", c, i, code, out)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	withSession, totalPoints := 0, int64(0)
	for i := 0; i < 3; i++ {
		st := f.Replica(i).Stats()
		if st.Sessions.Load() > 0 {
			withSession++
		}
		totalPoints += st.Points.Load()
		if st.Sessions.Load() == 0 && (st.Points.Load() > 0 || st.Updates.Load() > 0) {
			t.Errorf("replica %d served session traffic without holding the session", i)
		}
	}
	if withSession != 1 {
		t.Errorf("session exists on %d replicas, want exactly 1", withSession)
	}
	if want := int64(clients * perClient * 3 / 4); totalPoints != want {
		t.Errorf("points served = %d, want %d", totalPoints, want)
	}
}

// TestPointDuringInFlightBatchThroughRouter: MVCC point reads keep
// streaming 200s through the router while a /batch is mid-flight on the
// same session — stickiness routes both to the same replica, where reads
// answer from a committed snapshot.
func TestPointDuringInFlightBatchThroughRouter(t *testing.T) {
	f := startFleet(t, 3)

	if out, code := postJSON(t, f.URL()+"/session", map[string]any{
		"name": "busy", "expr": edgeSum, "dynamic": []string{"E"},
	}); code != http.StatusOK {
		t.Fatalf("creating session: %d %v", code, out)
	}

	var updates []map[string]any
	for i := 0; i < 400; i++ {
		updates = append(updates, map[string]any{"weight": "w", "tuple": []int{i % 6, (i + 1) % 6}, "value": i % 9})
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if out, code := postJSON(t, f.URL()+"/batch", map[string]any{"session": "busy", "updates": updates}); code != http.StatusOK {
			t.Errorf("batch: %d %v", code, out)
		}
	}()
	for i := 0; i < 25; i++ {
		if out, code := postJSON(t, f.URL()+"/point", map[string]any{"session": "busy"}); code != http.StatusOK {
			t.Fatalf("point %d during in-flight batch: status %d (%v)", i, code, out)
		}
	}
	wg.Wait()
}

// TestReplicaDownRerouteAndRecovery kills the replica owning a query key,
// asserts the very next request reroutes to a survivor (dial failure, not
// health-probe latency), then restarts the replica and asserts the key
// returns home once the probe marks it up.
func TestReplicaDownRerouteAndRecovery(t *testing.T) {
	f := startFleet(t, 3)

	owner := f.Router.OwnerOf(QueryShardKey("", edgeSum, "", nil))
	body := map[string]any{"expr": edgeSum, "semiring": "natural"}

	if out, code := postJSON(t, f.URL()+"/query", body); code != http.StatusOK {
		t.Fatalf("warm query: %d %v", code, out)
	}
	if got := f.Replica(owner).Stats().Queries.Load(); got != 1 {
		t.Fatalf("ring owner %d served %d queries, want 1", owner, got)
	}

	f.KillReplica(owner)
	if out, code := postJSON(t, f.URL()+"/query", body); code != http.StatusOK {
		t.Fatalf("query after killing owner: %d %v", code, out)
	}
	survivors := int64(0)
	for i := 0; i < 3; i++ {
		if i != owner {
			survivors += f.Replica(i).Stats().Queries.Load()
		}
	}
	if survivors != 1 {
		t.Fatalf("after mark-down, survivors served %d queries, want 1", survivors)
	}
	if st := f.Router.ReplicaStates()[owner]; st.Up {
		t.Error("owner still marked up after dial failure")
	}

	if err := f.RestartReplica(owner); err != nil {
		t.Fatalf("restart: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !f.Router.ReplicaStates()[owner].Up {
		if time.Now().After(deadline) {
			t.Fatal("replica not marked up again within 5s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if out, code := postJSON(t, f.URL()+"/query", body); code != http.StatusOK {
		t.Fatalf("query after recovery: %d %v", code, out)
	}
	if got := f.Replica(owner).Stats().Queries.Load(); got != 2 {
		t.Errorf("recovered owner served %d queries total, want 2 (key returned home)", got)
	}
}

// TestCacheKeySharding: textually different spellings of the same query
// share a canonical form, so they land on the same replica and compile
// once; a spread of distinct queries fans out across replicas.
func TestCacheKeySharding(t *testing.T) {
	f := startFleet(t, 3)

	for _, spelling := range []string{edgeSum, "sum x,y.[E(x,y)]*w(x,y)", "sum  x,  y .  [E(x, y)] * w(x, y)"} {
		if out, code := postJSON(t, f.URL()+"/query", map[string]any{"expr": spelling}); code != http.StatusOK {
			t.Fatalf("query %q: %d %v", spelling, code, out)
		}
	}
	totalCompiles := int64(0)
	for i := 0; i < 3; i++ {
		totalCompiles += f.Replica(i).Stats().Compiles.Load()
	}
	if totalCompiles != 1 {
		t.Errorf("3 spellings of one query compiled %d times fleet-wide, want 1", totalCompiles)
	}

	// Distinct queries spread: constants are part of the canonical text.
	for k := 2; k <= 17; k++ {
		expr := fmt.Sprintf("sum x, y . [E(x,y)] * w(x,y) * %d", k)
		if out, code := postJSON(t, f.URL()+"/query", map[string]any{"expr": expr}); code != http.StatusOK {
			t.Fatalf("query %d: %d %v", k, code, out)
		}
	}
	spread := 0
	for i := 0; i < 3; i++ {
		if f.Replica(i).Stats().Compiles.Load() > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Errorf("17 distinct queries compiled on %d replica(s), want ≥ 2", spread)
	}
}

// TestMergedStatsEqualsSum: the fleet /stats "fleet" document equals the
// field-wise sum of the per-replica snapshots it was merged from.
func TestMergedStatsEqualsSum(t *testing.T) {
	f := startFleet(t, 3)

	for k := 1; k <= 9; k++ {
		expr := fmt.Sprintf("sum x, y . [E(x,y)] * w(x,y) * %d", k)
		for rep := 0; rep < 2; rep++ {
			if out, code := postJSON(t, f.URL()+"/query", map[string]any{"expr": expr}); code != http.StatusOK {
				t.Fatalf("query: %d %v", code, out)
			}
		}
	}
	if _, code := postJSON(t, f.URL()+"/session", map[string]any{"name": "ms", "expr": edgeSum, "dynamic": []string{"E"}}); code != http.StatusOK {
		t.Fatal("session create failed")
	}
	if _, code := postJSON(t, f.URL()+"/batch", map[string]any{
		"session": "ms",
		"updates": []map[string]any{{"weight": "w", "tuple": []int{0, 1}, "value": 3}},
	}); code != http.StatusOK {
		t.Fatal("batch failed")
	}

	resp, err := http.Get(f.URL() + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fs FleetStats
	if err := json.NewDecoder(resp.Body).Decode(&fs); err != nil {
		t.Fatal(err)
	}
	if len(fs.ReplicaErrors) > 0 {
		t.Fatalf("scrape errors: %v", fs.ReplicaErrors)
	}
	if len(fs.Replicas) != 3 {
		t.Fatalf("merged over %d replicas, want 3", len(fs.Replicas))
	}

	var sum server.StatsSnapshot
	for _, snap := range fs.Replicas {
		sum.Queries += snap.Queries
		sum.Points += snap.Points
		sum.Sessions += snap.Sessions
		sum.Batches += snap.Batches
		sum.BatchedUpdates += snap.BatchedUpdates
		sum.Compiles += snap.Compiles
		sum.CacheHits += snap.CacheHits
		sum.CacheMisses += snap.CacheMisses
		sum.Errors += snap.Errors
		sum.CachedQueries += snap.CachedQueries
		sum.CacheBytes += snap.CacheBytes
		sum.Databases += snap.Databases
	}
	for _, c := range []struct {
		name      string
		got, want int64
	}{
		{"queries", fs.Fleet.Queries, sum.Queries},
		{"points", fs.Fleet.Points, sum.Points},
		{"sessions", fs.Fleet.Sessions, sum.Sessions},
		{"batches", fs.Fleet.Batches, sum.Batches},
		{"batchedUpdates", fs.Fleet.BatchedUpdates, sum.BatchedUpdates},
		{"compiles", fs.Fleet.Compiles, sum.Compiles},
		{"cacheHits", fs.Fleet.CacheHits, sum.CacheHits},
		{"cacheMisses", fs.Fleet.CacheMisses, sum.CacheMisses},
		{"errors", fs.Fleet.Errors, sum.Errors},
		{"cachedQueries", int64(fs.Fleet.CachedQueries), int64(sum.CachedQueries)},
		{"cacheBytes", fs.Fleet.CacheBytes, sum.CacheBytes},
		{"databases", int64(fs.Fleet.Databases), int64(sum.Databases)},
	} {
		if c.got != c.want {
			t.Errorf("fleet.%s = %d, want per-replica sum %d", c.name, c.got, c.want)
		}
	}
	if fs.Fleet.Queries != 18 {
		t.Errorf("fleet.queries = %d, want 18", fs.Fleet.Queries)
	}
	if fs.Fleet.Sessions != 1 {
		t.Errorf("fleet.sessions = %d, want 1", fs.Fleet.Sessions)
	}
	if epoch, ok := fs.Fleet.SessionEpochs["ms"]; !ok || epoch == 0 {
		t.Errorf("fleet sessionEpochs missing session ms (got %v)", fs.Fleet.SessionEpochs)
	}
	if fs.Router.Replicas != 3 || fs.Router.Live != 3 {
		t.Errorf("router state %d/%d, want 3/3 live", fs.Router.Live, fs.Router.Replicas)
	}
	if fs.Router.Proxied == 0 {
		t.Error("router proxied counter is zero after traffic")
	}
}

// metricLine matches one Prometheus text-format sample.
var metricLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? ` +
	`([-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|\+Inf|NaN)$`)

// scrapeMetrics fetches a /metrics exposition, asserts every sample line
// parses, and returns the line → value map.
func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := map[string]float64{}
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !metricLine.MatchString(line) {
			t.Fatalf("malformed exposition line: %q", line)
		}
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparsable value in %q: %v", line, err)
		}
		samples[line[:i]] = v
	}
	return samples
}

// TestFleetMetricsMerge: the fleet /metrics exposition parses, and every
// histogram bucket of the merged aggserve_request_duration_seconds family
// equals the sum of the corresponding per-replica buckets.
func TestFleetMetricsMerge(t *testing.T) {
	f := startFleet(t, 3)

	for k := 1; k <= 12; k++ {
		expr := fmt.Sprintf("sum x, y . [E(x,y)] * w(x,y) * %d", k)
		if out, code := postJSON(t, f.URL()+"/query", map[string]any{"expr": expr}); code != http.StatusOK {
			t.Fatalf("query: %d %v", code, out)
		}
	}

	fleetSamples := scrapeMetrics(t, f.URL())
	replicaSamples := make([]map[string]float64, 3)
	for i := range replicaSamples {
		replicaSamples[i] = scrapeMetrics(t, f.ReplicaURL(i))
	}

	// Every aggserve_ bucket/count/sum line of the fleet exposition must be
	// the per-replica sum (replica expositions contain the same lines).
	checked := 0
	for line, fleetV := range fleetSamples {
		if !strings.HasPrefix(line, "aggserve_request_duration_seconds") &&
			!strings.HasPrefix(line, "aggserve_stage_duration_seconds_bucket") {
			continue
		}
		if strings.Contains(line, "_sum") {
			continue // float seconds: summing replica floats re-orders additions
		}
		var sum float64
		for _, rs := range replicaSamples {
			sum += rs[line]
		}
		if fleetV != sum {
			t.Errorf("%s = %v on the fleet, want per-replica sum %v", line, fleetV, sum)
		}
		checked++
	}
	if checked < 50 {
		t.Fatalf("only %d histogram lines compared; exposition shape changed?", checked)
	}

	// Counter agreement and router families present.
	var queries float64
	for i := 0; i < 3; i++ {
		queries += float64(f.Replica(i).Stats().Queries.Load())
	}
	if got := fleetSamples[`aggserve_requests_total{endpoint="query"}`]; got != queries {
		t.Errorf("fleet aggserve_requests_total{query} = %v, want %v", got, queries)
	}
	if got := fleetSamples["aggfleet_replicas_live"]; got != 3 {
		t.Errorf("aggfleet_replicas_live = %v, want 3", got)
	}
	upLines := 0
	for line, v := range fleetSamples {
		if strings.HasPrefix(line, "aggfleet_replica_up{") {
			upLines++
			if v != 1 {
				t.Errorf("%s = %v, want 1", line, v)
			}
		}
	}
	if upLines != 3 {
		t.Errorf("aggfleet_replica_up lines = %d, want 3", upLines)
	}
}

// TestErrorTaxonomyThroughRouter: replica error responses survive the hop
// byte-for-byte — same status, same machine-readable code — and match what
// the replica answers directly.
func TestErrorTaxonomyThroughRouter(t *testing.T) {
	f := startFleet(t, 3)

	cases := []struct {
		name string
		url  string
		body map[string]any
		want int
	}{
		{"parse error", "/query", map[string]any{"expr": "sum x , ["}, http.StatusBadRequest},
		{"unknown database", "/query", map[string]any{"expr": edgeSum, "db": "nope"}, http.StatusNotFound},
		{"unknown session", "/point", map[string]any{"session": "ghost"}, http.StatusNotFound},
		{"unknown semiring", "/query", map[string]any{"expr": edgeSum, "semiring": "imaginary"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		viaRouter, code := postJSON(t, f.URL()+tc.url, tc.body)
		if code != tc.want {
			t.Errorf("%s via router: status %d, want %d", tc.name, code, tc.want)
		}
		if viaRouter["code"] == "" || viaRouter["code"] == nil {
			t.Errorf("%s via router: missing taxonomy code in %v", tc.name, viaRouter)
			continue
		}
		direct, directStatus := postJSON(t, f.ReplicaURL(0)+tc.url, tc.body)
		if directStatus != code || direct["code"] != viaRouter["code"] {
			t.Errorf("%s: router (%d, %v) differs from direct replica (%d, %v)",
				tc.name, code, viaRouter["code"], directStatus, direct["code"])
		}
	}
}

// TestEnumerateStreamsThroughRouter: the NDJSON stream passes through the
// proxy — content type, per-line framing and the final summary line intact.
func TestEnumerateStreamsThroughRouter(t *testing.T) {
	f := startFleet(t, 2)

	resp, err := http.Get(f.URL() + "/enumerate?phi=E(x,y)&vars=x,y&limit=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q did not survive the hop", ct)
	}
	var lines []map[string]any
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 6 {
		t.Fatalf("streamed %d lines, want 5 answers + summary", len(lines))
	}
	last := lines[len(lines)-1]
	if last["done"] != true {
		t.Errorf("missing summary line, got %v", last)
	}
	if last["streamed"] != float64(5) {
		t.Errorf("summary streamed = %v, want 5", last["streamed"])
	}
}

// nextStreamLine reads the next non-heartbeat NDJSON object from a live
// stream, failing the test if the stream ends first.
func nextStreamLine(t *testing.T, sc *bufio.Scanner) map[string]any {
	t.Helper()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad stream line %q: %v", line, err)
		}
		if m["heartbeat"] == true {
			continue
		}
		return m
	}
	t.Fatalf("stream ended early: %v", sc.Err())
	return nil
}

// TestSubscribeLiveThroughRouter: a /subscribe stream through the router
// lands on the session's ring owner, pushes each committed epoch through
// the proxy while the connection stays open (per-chunk flush — the update
// arrives long before the response completes), and a client disconnect
// propagates back to the replica, which cancels the subscription and
// drains its subscriber gauge.
func TestSubscribeLiveThroughRouter(t *testing.T) {
	f := startFleet(t, 3)

	if out, code := postJSON(t, f.URL()+"/session", map[string]any{
		"name": "live", "expr": edgeSum, "dynamic": []string{"E"},
	}); code != http.StatusOK {
		t.Fatalf("creating session: %d %v", code, out)
	}
	owner := f.Router.OwnerOf(SessionShardKey("live"))

	resp, err := http.Get(f.URL() + "/subscribe?session=live&mode=ndjson")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q did not survive the hop", ct)
	}
	sc := bufio.NewScanner(resp.Body)

	first := nextStreamLine(t, sc)
	if first["epoch"] != float64(0) || first["value"] == nil {
		t.Fatalf("initial push = %v, want epoch-0 value", first)
	}

	// Commit an epoch while the stream is open; the push must flow through
	// the still-streaming proxied response.
	if out, code := postJSON(t, f.URL()+"/update", map[string]any{
		"session": "live",
		"updates": []map[string]any{{"rel": "E", "tuple": []int{0, 1}, "present": false}},
	}); code != http.StatusOK {
		t.Fatalf("update: %d %v", code, out)
	}
	next := nextStreamLine(t, sc)
	if next["epoch"] != float64(1) {
		t.Fatalf("live push = %v, want epoch 1", next)
	}

	// Sticky: the subscription lives on the ring owner and nowhere else.
	for i := 0; i < 3; i++ {
		st := f.Replica(i).Stats()
		want := int64(0)
		if i == owner {
			want = 1
		}
		if got := st.Subscriptions.Load(); got != want {
			t.Errorf("replica %d subscriptions = %d, want %d", i, got, want)
		}
	}

	// Disconnect: the replica notices the canceled proxy hop, counts it,
	// and the subscriber gauge drains.
	resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := f.Replica(owner).Stats()
		if st.Canceled.Load() >= 1 && st.Subscribers.Load() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never observed the disconnect: canceled=%d subscribers=%d",
				st.Canceled.Load(), st.Subscribers.Load())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSubscribeKillOwnerMidStream: killing the replica that owns an open
// /subscribe stream must surface as a clean end-of-stream on the client —
// never a hang.
func TestSubscribeKillOwnerMidStream(t *testing.T) {
	f := startFleet(t, 3)

	if out, code := postJSON(t, f.URL()+"/session", map[string]any{
		"name": "doomed", "expr": edgeSum, "dynamic": []string{"E"},
	}); code != http.StatusOK {
		t.Fatalf("creating session: %d %v", code, out)
	}
	owner := f.Router.OwnerOf(SessionShardKey("doomed"))

	resp, err := http.Get(f.URL() + "/subscribe?session=doomed&mode=ndjson")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	nextStreamLine(t, sc) // initial snapshot arrived; the stream is live

	f.KillReplica(owner)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for sc.Scan() {
		}
		// Any terminal outcome is acceptable — EOF or a transport error —
		// as long as the stream ends.
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("subscribe stream hung after its owner was killed")
	}
}

// TestIngestThroughRouter: /ingest streams the request body through the
// router without buffering, so acks flow back to the client while it is
// still producing changes (full duplex across the hop).  The final state
// is unchanged — every removal is paired with a re-insert — and the
// owner's ingest counters account for every line.
func TestIngestThroughRouter(t *testing.T) {
	f := startFleet(t, 3)

	if out, code := postJSON(t, f.URL()+"/session", map[string]any{
		"name": "feed", "expr": edgeSum, "dynamic": []string{"E"},
	}); code != http.StatusOK {
		t.Fatalf("creating session: %d %v", code, out)
	}
	owner := f.Router.OwnerOf(SessionShardKey("feed"))
	base, code := postJSON(t, f.URL()+"/point", map[string]any{"session": "feed"})
	if code != http.StatusOK {
		t.Fatalf("baseline point: %d %v", code, base)
	}

	pr, pwr := io.Pipe()
	req, err := http.NewRequest("POST", f.URL()+"/ingest?session=feed&wave=2&ack=1", pr)
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		resp *http.Response
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		resCh <- result{resp, err}
	}()

	write := func(lines string) {
		t.Helper()
		if _, err := io.WriteString(pwr, lines); err != nil {
			t.Fatalf("writing changes: %v", err)
		}
	}
	// Wave 1: remove an edge and put it back.
	write(`{"rel":"E","tuple":[0,1],"present":false}` + "\n" +
		`{"rel":"E","tuple":[0,1]}` + "\n")
	res := <-resCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	defer res.resp.Body.Close()
	if res.resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", res.resp.StatusCode)
	}
	sc := bufio.NewScanner(res.resp.Body)
	ack := nextStreamLine(t, sc)
	if ack["applied"] != float64(2) || ack["epoch"] != float64(1) {
		t.Fatalf("first ack = %v, want applied=2 epoch=1", ack)
	}

	// Wave 2, written only after the first ack came back through the hop.
	write(`{"rel":"E","tuple":[1,2],"present":false}` + "\n" +
		`{"rel":"E","tuple":[1,2]}` + "\n")
	ack = nextStreamLine(t, sc)
	if ack["applied"] != float64(4) || ack["epoch"] != float64(2) {
		t.Fatalf("second ack = %v, want applied=4 epoch=2", ack)
	}

	pwr.Close()
	fin := nextStreamLine(t, sc)
	if fin["done"] != true || fin["applied"] != float64(4) {
		t.Fatalf("final line = %v, want done applied=4", fin)
	}

	after, code := postJSON(t, f.URL()+"/point", map[string]any{"session": "feed"})
	if code != http.StatusOK {
		t.Fatalf("point after ingest: %d %v", code, after)
	}
	if after["value"] != base["value"] {
		t.Errorf("value drifted %v -> %v despite paired remove/re-insert", base["value"], after["value"])
	}

	st := f.Replica(owner).Stats()
	if st.Ingests.Load() != 1 || st.IngestedChanges.Load() != 4 || st.IngestWaves.Load() != 2 {
		t.Errorf("owner ingest counters = %d/%d/%d, want 1 ingest, 4 changes, 2 waves",
			st.Ingests.Load(), st.IngestedChanges.Load(), st.IngestWaves.Load())
	}
}
