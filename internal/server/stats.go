package server

import (
	"runtime/debug"
	"sync/atomic"
	"time"
)

// Stats holds the expvar-style counters of a running server.  All fields are
// updated atomically and may be read while the server handles traffic.
type Stats struct {
	Queries        atomic.Int64 // completed /query requests
	Points         atomic.Int64 // completed /point requests
	Updates        atomic.Int64 // individual updates applied via /update
	UpdateBatches  atomic.Int64 // completed /update requests
	Batches        atomic.Int64 // completed /batch requests
	BatchedUpdates atomic.Int64 // updates applied atomically via /batch
	Enumerations   atomic.Int64 // completed /enumerate requests
	Analyzes       atomic.Int64 // completed /analyze requests
	Sessions       atomic.Int64 // sessions created via /session

	Subscriptions atomic.Int64 // /subscribe streams opened
	Subscribers   atomic.Int64 // gauge: /subscribe streams currently open
	Pushes        atomic.Int64 // updates pushed to /subscribe clients
	PushCoalesced atomic.Int64 // evaluated results folded into pushed updates by lagging clients

	Ingests         atomic.Int64 // completed /ingest requests
	IngestWaves     atomic.Int64 // batch waves committed by /ingest
	IngestedChanges atomic.Int64 // changes applied via /ingest

	Compiles    atomic.Int64 // expressions compiled (cache misses that ran the compiler)
	CacheHits   atomic.Int64 // cache lookups served without compiling
	CacheMisses atomic.Int64 // cache lookups that had to compile

	CompileNanos atomic.Int64 // cumulative wall time spent compiling
	EvalNanos    atomic.Int64 // cumulative wall time spent evaluating /query circuits

	InFlight atomic.Int64 // requests currently being served
	Errors   atomic.Int64 // requests answered with a non-2xx status
	Canceled atomic.Int64 // requests abandoned by their client mid-work
	// Busy counts fail-fast ErrSessionBusy rejections (409s).  Since reads
	// answer from MVCC snapshots these arise only from writer–writer
	// conflicts: two updates racing for the same session's write lock.
	Busy atomic.Int64
}

// StatsSnapshot is the JSON shape served by GET /stats.
type StatsSnapshot struct {
	Queries        int64 `json:"queries"`
	Points         int64 `json:"points"`
	Updates        int64 `json:"updates"`
	UpdateBatches  int64 `json:"updateBatches"`
	Batches        int64 `json:"batches"`
	BatchedUpdates int64 `json:"batchedUpdates"`
	Enumerations   int64 `json:"enumerations"`
	Analyzes       int64 `json:"analyzes"`
	Sessions       int64 `json:"sessions"`

	Subscriptions   int64 `json:"subscriptions"`
	Subscribers     int64 `json:"subscribers"`
	Pushes          int64 `json:"pushes"`
	PushCoalesced   int64 `json:"pushCoalesced"`
	Ingests         int64 `json:"ingests"`
	IngestWaves     int64 `json:"ingestWaves"`
	IngestedChanges int64 `json:"ingestedChanges"`

	Compiles      int64   `json:"compiles"`
	CacheHits     int64   `json:"cacheHits"`
	CacheMisses   int64   `json:"cacheMisses"`
	CompileMillis float64 `json:"compileMillis"`
	EvalMillis    float64 `json:"evalMillis"`
	InFlight      int64   `json:"inFlight"`
	Errors        int64   `json:"errors"`
	Canceled      int64   `json:"canceled"`
	Busy          int64   `json:"busy"`
	CachedQueries int     `json:"cachedQueries"`
	Databases     int     `json:"databases"`
	UptimeSeconds float64 `json:"uptimeSeconds"`

	// StartTime is the server start in RFC 3339; GoVersion and Revision
	// identify the running build (VCS revision when the binary was built
	// from a checkout, empty otherwise).
	StartTime string `json:"startTime"`
	GoVersion string `json:"goVersion"`
	Revision  string `json:"revision,omitempty"`

	// SessionEpochs maps each registered session to the number of updates
	// committed on it, and SessionRetainedUndoBytes is the MVCC undo history
	// currently pinned by open snapshot readers, summed over all sessions
	// (zero whenever no reader is pinned).
	SessionEpochs            map[string]uint64 `json:"sessionEpochs,omitempty"`
	SessionRetainedUndoBytes int64             `json:"sessionRetainedUndoBytes"`

	// CacheBytes is the total resident size of the frozen Programs held by
	// the compiled-artefact cache; CacheEntryBytes lists the per-entry sizes
	// in MRU-to-LRU order (0 for entries still compiling).  One Program is
	// shared by every session and evaluation of its entry, so this is the
	// circuit-side memory footprint of the whole cache.
	CacheBytes      int64   `json:"cacheBytes"`
	CacheEntryBytes []int64 `json:"cacheEntryBytes"`
}

func (st *Stats) snapshot() StatsSnapshot {
	return StatsSnapshot{
		Queries:        st.Queries.Load(),
		Points:         st.Points.Load(),
		Updates:        st.Updates.Load(),
		UpdateBatches:  st.UpdateBatches.Load(),
		Batches:        st.Batches.Load(),
		BatchedUpdates: st.BatchedUpdates.Load(),
		Enumerations:   st.Enumerations.Load(),
		Analyzes:       st.Analyzes.Load(),
		Sessions:       st.Sessions.Load(),

		Subscriptions:   st.Subscriptions.Load(),
		Subscribers:     st.Subscribers.Load(),
		Pushes:          st.Pushes.Load(),
		PushCoalesced:   st.PushCoalesced.Load(),
		Ingests:         st.Ingests.Load(),
		IngestWaves:     st.IngestWaves.Load(),
		IngestedChanges: st.IngestedChanges.Load(),

		Compiles:      st.Compiles.Load(),
		CacheHits:     st.CacheHits.Load(),
		CacheMisses:   st.CacheMisses.Load(),
		CompileMillis: float64(st.CompileNanos.Load()) / 1e6,
		EvalMillis:    float64(st.EvalNanos.Load()) / 1e6,
		InFlight:      st.InFlight.Load(),
		Errors:        st.Errors.Load(),
		Canceled:      st.Canceled.Load(),
		Busy:          st.Busy.Load(),
	}
}

// BuildInfo reports the Go toolchain version and, when the binary was built
// from a version-controlled checkout, the VCS revision (suffixed with
// "-dirty" for modified trees).
func BuildInfo() (goVersion, revision string) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "", ""
	}
	goVersion = bi.GoVersion
	var dirty bool
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if revision != "" && dirty {
		revision += "-dirty"
	}
	return goVersion, revision
}

// timed runs f and adds its wall time to the counter.
func timed(counter *atomic.Int64, f func()) time.Duration {
	start := time.Now()
	f()
	d := time.Since(start)
	counter.Add(d.Nanoseconds())
	return d
}
