package obs

import (
	"context"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// Buckets must tile the uint64 value space with no gaps or overlaps, and
// bucketOf must land every value inside its reported bounds.
func TestBucketBoundsTile(t *testing.T) {
	for b := 0; b < NumBuckets-1; b++ {
		_, hi := BucketBounds(b)
		lo, _ := BucketBounds(b + 1)
		if hi != lo {
			t.Fatalf("bucket %d hi=%d but bucket %d lo=%d", b, hi, b+1, lo)
		}
	}
	lo0, _ := BucketBounds(0)
	if lo0 != 0 {
		t.Fatalf("bucket 0 lo=%d, want 0", lo0)
	}

	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 100000; i++ {
		// Spread samples over all magnitudes, not uniformly over uint64.
		v := rng.Uint64() >> (rng.UintN(64))
		b := bucketOf(v)
		if b < 0 || b >= NumBuckets {
			t.Fatalf("bucketOf(%d)=%d out of range", v, b)
		}
		lo, hi := BucketBounds(b)
		if v < lo || (v >= hi && b != NumBuckets-1) {
			t.Fatalf("bucketOf(%d)=%d but bounds [%d,%d)", v, b, lo, hi)
		}
	}
	// Max value must still bucket in range.
	if b := bucketOf(^uint64(0)); b != NumBuckets-1 {
		t.Fatalf("bucketOf(max)=%d, want %d", b, NumBuckets-1)
	}

	// Relative bucket width stays under 1/subCount beyond the linear range.
	for b := 2 * subCount; b < NumBuckets-1; b++ {
		lo, hi := BucketBounds(b)
		if float64(hi-lo)/float64(lo) > 1.0/subCount+1e-12 {
			t.Fatalf("bucket %d [%d,%d) wider than %.3f relative", b, lo, hi, 1.0/subCount)
		}
	}
}

// Quantile estimates must stay within one bucket width (≤12.5% relative,
// plus slack for interpolation at tiny counts) of the exact order statistic.
func TestQuantileVsExactSort(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	h := NewHistogram()
	const n = 20000
	samples := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		// Log-normal-ish latencies: microseconds to tens of millis.
		v := time.Duration(1000 * (1 << rng.UintN(15)) * (1 + rng.UintN(8)) / 8)
		h.Observe(v)
		samples = append(samples, float64(v))
	}
	sort.Float64s(samples)
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		exact := samples[int(q*float64(n-1))]
		got := float64(s.Quantile(q))
		rel := (got - exact) / exact
		if rel < 0 {
			rel = -rel
		}
		if rel > 0.15 {
			t.Errorf("q=%.2f: got %.0f exact %.0f (rel err %.3f)", q, got, exact, rel)
		}
	}
}

func TestSnapshotMergeAndMean(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 1; i <= 100; i++ {
		a.Observe(time.Duration(i) * time.Microsecond)
	}
	for i := 1; i <= 50; i++ {
		b.Observe(time.Duration(i) * time.Millisecond)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	merged := sa
	merged.Merge(&sb)
	if merged.Count != sa.Count+sb.Count {
		t.Fatalf("merged count %d, want %d", merged.Count, sa.Count+sb.Count)
	}
	if merged.Sum != sa.Sum+sb.Sum {
		t.Fatalf("merged sum %v, want %v", merged.Sum, sa.Sum+sb.Sum)
	}
	for i := range merged.Counts {
		if merged.Counts[i] != sa.Counts[i]+sb.Counts[i] {
			t.Fatalf("bucket %d: merged %d, want %d", i, merged.Counts[i], sa.Counts[i]+sb.Counts[i])
		}
	}
	if got := sa.Mean(); got != sa.Sum/time.Duration(sa.Count) {
		t.Fatalf("mean %v", got)
	}
	var empty Snapshot
	if empty.Mean() != 0 || empty.Quantile(0.5) != 0 {
		t.Fatal("empty snapshot should report zeros")
	}
}

// Hammer one histogram from 16 goroutines; the final snapshot must account
// for every observation exactly (counts and sum are atomic per shard).
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const (
		goroutines = 16
		perG       = 5000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(g*perG+i) * time.Nanosecond)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if want := uint64(goroutines * perG); s.Count != want {
		t.Fatalf("count %d, want %d", s.Count, want)
	}
	total := time.Duration(0)
	n := int64(goroutines * perG)
	total = time.Duration(n * (n - 1) / 2)
	if s.Sum != total {
		t.Fatalf("sum %d, want %d", s.Sum, total)
	}
}

func TestNilSafety(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second) // must not panic
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram snapshot not empty")
	}
	var tr *Tracer
	tr.Observe(StageEval, time.Second)
	tr.StartSpan(StageParse).End()
	if tr.Stage(StageWave) != nil {
		t.Fatal("nil tracer stage not nil")
	}
	if tr.WaveHook() != nil {
		t.Fatal("nil tracer wave hook not nil")
	}
	Span{}.End() // zero span is inert
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context should carry no tracer")
	}
	if FromContext(nil) != nil { //nolint:staticcheck // nil ctx tolerated by design
		t.Fatal("nil context should carry no tracer")
	}
}

func TestTracerSpansAndContext(t *testing.T) {
	tr := NewTracer()
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("context round-trip lost the tracer")
	}
	sp := FromContext(ctx).StartSpan(StageCompile)
	time.Sleep(time.Millisecond)
	sp.End()
	s := tr.Stage(StageCompile).Snapshot()
	if s.Count != 1 {
		t.Fatalf("compile stage count %d, want 1", s.Count)
	}
	if s.Sum < 500*time.Microsecond {
		t.Fatalf("compile stage sum %v implausibly small", s.Sum)
	}
	hook := tr.WaveHook()
	hook(3 * time.Microsecond)
	if got := tr.Stage(StageWave).Snapshot().Count; got != 1 {
		t.Fatalf("wave count %d, want 1", got)
	}
	if StageParse.String() != "parse" || StageWave.String() != "wave" {
		t.Fatal("stage names wrong")
	}
	if NewContext(context.Background(), nil) != context.Background() {
		t.Fatal("nil tracer should leave ctx unchanged")
	}
}

// The exposition writer must emit monotone cumulative buckets ending at the
// exact count, and a parsable minimal line shape.
func TestPrometheusHistogramLines(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	var b strings.Builder
	pw := NewWriter(&b)
	pw.Header("x_seconds", "test", "histogram")
	pw.Histogram("x_seconds", Labels{"endpoint": "query"}, &s)
	if err := pw.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	var prev int64 = -1
	lines := strings.Split(strings.TrimSpace(out), "\n")
	sawInf, sawCount := false, false
	for _, ln := range lines {
		switch {
		case strings.HasPrefix(ln, "x_seconds_bucket"):
			if !strings.Contains(ln, `endpoint="query"`) || !strings.Contains(ln, `le="`) {
				t.Fatalf("bucket line missing labels: %q", ln)
			}
			v, err := strconv.ParseInt(ln[strings.LastIndexByte(ln, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("unparsable bucket line %q: %v", ln, err)
			}
			if v < prev {
				t.Fatalf("cumulative buckets not monotone: %q after %d", ln, prev)
			}
			prev = v
			if strings.Contains(ln, `le="+Inf"`) {
				sawInf = true
				if uint64(v) != s.Count {
					t.Fatalf("+Inf bucket %d != count %d", v, s.Count)
				}
			}
		case strings.HasPrefix(ln, "x_seconds_count"):
			sawCount = true
		}
	}
	if !sawInf || !sawCount {
		t.Fatalf("missing +Inf bucket or _count in:\n%s", out)
	}
}
