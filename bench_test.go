// Package repro's top-level benchmarks: one benchmark per experiment of
// EXPERIMENTS.md (E1–E10), exercising the core operation whose complexity
// the corresponding table reports.  Run with
//
//	go test -bench=. -benchmem
//
// The full parameter sweeps (tables over several database sizes) are
// produced by cmd/aggbench; these benchmarks fix one representative size so
// that `go test -bench` stays fast and comparable across machines.
package repro

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/compile"
	"repro/internal/dynamicq"
	"repro/internal/enumerate"
	"repro/internal/graph"
	"repro/internal/logic"
	"repro/internal/perm"
	"repro/internal/provenance"
	"repro/internal/semiring"
	"repro/internal/structure"
	"repro/internal/workload"
)

const benchSize = 4000

// BenchmarkE1CircuitCompilation measures Theorem 6: compiling the triangle
// query over a bounded-degree database.
func BenchmarkE1CircuitCompilation(b *testing.B) {
	db := workload.BoundedDegree(benchSize, 3, 42)
	q := bench.TriangleQuery()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compile.Compile(db.A, q, compile.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2WeightedTriangles measures result (A): evaluating the compiled
// triangle query, against the hand-written edge-iteration baseline.
func BenchmarkE2WeightedTriangles(b *testing.B) {
	db := workload.BoundedDegree(benchSize, 3, 7)
	w := db.Weights()
	res, err := compile.Compile(db.A, bench.TriangleQuery(), compile.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("compiled-eval", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			compile.Evaluate[int64](res, semiring.Nat, w)
		}
	})
	b.Run("compiled-eval-minplus", func(b *testing.B) {
		mpw := db.MinPlusWeights()
		for i := 0; i < b.N; i++ {
			compile.Evaluate[semiring.Ext](res, semiring.MinPlus, mpw)
		}
	})
	b.Run("edge-iterate-baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.TriangleCountEdgeIterate[int64](semiring.Nat, db.A, w)
		}
	})
}

// BenchmarkE3Permanent measures Section 4: static evaluation and the three
// dynamic-maintenance strategies for a 3×n permanent.
func BenchmarkE3Permanent(b *testing.B) {
	const k, n = 3, 100000
	mk := func(s semiring.Semiring[int64], mod int64) *perm.Matrix[int64] {
		m := perm.NewMatrix[int64](s, k, n)
		for r := 0; r < k; r++ {
			for c := 0; c < n; c++ {
				m.Set(r, c, int64((r*31+c*17)%5+1)%mod)
			}
		}
		return m
	}
	b.Run("static-eval", func(b *testing.B) {
		m := mk(semiring.Nat, 1<<62)
		for i := 0; i < b.N; i++ {
			perm.Perm[int64](semiring.Nat, m)
		}
	})
	b.Run("update-generic-log", func(b *testing.B) {
		d := perm.NewDynamic[int64](semiring.Nat, mk(semiring.Nat, 1<<62))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.Update(i%k, (i*37)%n, int64(i%6))
			_ = d.Value()
		}
	})
	b.Run("update-ring-const", func(b *testing.B) {
		d := perm.NewRingDynamic[int64](semiring.Int, mk(semiring.Int, 1<<62))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.Update(i%k, (i*37)%n, int64(i%6))
			_ = d.Value()
		}
	})
	b.Run("update-finite-const", func(b *testing.B) {
		mod := semiring.NewModular(7)
		d := perm.NewFiniteDynamic[int64](mod, mk(mod, 7))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.Update(i%k, (i*37)%n, int64(i%7))
			_ = d.Value()
		}
	})
}

// BenchmarkE4DynamicUpdates measures Theorem 8: weight updates plus value
// reads on the compiled triangle query.
func BenchmarkE4DynamicUpdates(b *testing.B) {
	db := workload.BoundedDegree(benchSize, 3, 11)
	w := db.Weights()
	edges := db.A.Tuples("E")
	q := bench.TriangleQuery()
	b.Run("generic-semiring", func(b *testing.B) {
		query, err := dynamicq.CompileQuery[int64](semiring.Nat, db.A, w, q, compile.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tpl := edges[(i*13)%len(edges)]
			if err := query.SetWeight("w", tpl, int64(i%5+1)); err != nil {
				b.Fatal(err)
			}
			if _, err := query.ValueClosed(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ring", func(b *testing.B) {
		query, err := dynamicq.CompileQuery[int64](semiring.Int, db.A, w, q, compile.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tpl := edges[(i*13)%len(edges)]
			if err := query.SetWeight("w", tpl, int64(i%5+1)); err != nil {
				b.Fatal(err)
			}
			if _, err := query.ValueClosed(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE5Enumeration measures Theorem 24: preprocessing and per-answer
// delay of the 2-path query.
func BenchmarkE5Enumeration(b *testing.B) {
	db := workload.BoundedDegree(benchSize, 3, 19)
	phi := logic.Conj(logic.R("E", "x", "y"), logic.R("E", "y", "z"), logic.Neg(logic.Equal("x", "z")))
	vars := []string{"x", "y", "z"}
	b.Run("preprocess", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := enumerate.EnumerateAnswers(db.A, phi, vars, compile.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("per-answer-delay", func(b *testing.B) {
		ans, err := enumerate.EnumerateAnswers(db.A, phi, vars, compile.Options{})
		if err != nil {
			b.Fatal(err)
		}
		cur := ans.Cursor()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := cur.Next(); !ok {
				cur = ans.Cursor()
			}
		}
	})
}

// BenchmarkE6PageRank measures Example 9: point queries and updates for one
// PageRank round.
func BenchmarkE6PageRank(b *testing.B) {
	db := workload.PreferentialAttachment(benchSize, 2, 23)
	a := db.A
	sig := structure.MustSignature(a.Sig.Relations,
		[]structure.WeightSymbol{{Name: "w", Arity: 1}, {Name: "invdeg", Arity: 1}, {Name: "base", Arity: 0}})
	s := structure.NewStructure(sig, a.N)
	for _, t := range a.Tuples("E") {
		s.MustAddTuple("E", t...)
	}
	outdeg := make([]float64, a.N)
	for _, t := range a.Tuples("E") {
		outdeg[t[0]]++
	}
	w := structure.NewWeights[float64]()
	for v := 0; v < a.N; v++ {
		w.Set("w", structure.Tuple{v}, 1/float64(a.N))
		if outdeg[v] > 0 {
			w.Set("invdeg", structure.Tuple{v}, 0.85/outdeg[v])
		}
	}
	w.Set("base", structure.Tuple{}, 0.15/float64(a.N))
	f := bench.PageRankQuery()
	q, err := dynamicq.CompileQuery[float64](semiring.Float, s, w, f, compile.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("point-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := q.Value(i % a.N); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("weight-update", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := q.SetWeight("w", structure.Tuple{i % a.N}, float64(i%7)/float64(a.N)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE7NestedQuery measures Theorem 26 on the max-average-neighbour
// query (one end-to-end evaluation at a fixed size).
func BenchmarkE7NestedQuery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E7NestedQuery([]int{1000})
	}
}

// BenchmarkE8LocalSearch measures Example 25: one full local-search run on a
// grid, driven by the dynamic enumerator.
func BenchmarkE8LocalSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E8LocalSearch([]int{2500})
	}
}

// BenchmarkE9Coloring measures the low-treedepth colouring substrate.
func BenchmarkE9Coloring(b *testing.B) {
	db := workload.Grid(70, 70, 3)
	g := db.A.Gaifman()
	b.Run("p2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			graph.LowTreedepthColoring(g, 2)
		}
	})
	b.Run("p3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			graph.LowTreedepthColoring(g, 3)
		}
	})
}

// BenchmarkE10ProvenancePermanent measures Lemma 23: building and draining a
// free-semiring permanent enumerator.
func BenchmarkE10ProvenancePermanent(b *testing.B) {
	const k, n = 2, 50000
	c := circuit.NewBuilder()
	var entries []circuit.PermEntry
	for col := 0; col < n; col++ {
		for row := 0; row < k; row++ {
			key := structure.MakeWeightKey("cell", structure.Tuple{row, col})
			entries = append(entries, circuit.PermEntry{Row: row, Col: col, Gate: c.Input(key)})
		}
	}
	c.SetOutput(c.Perm(k, n, entries))
	inputs := func(key structure.WeightKey) enumerate.Value {
		return enumerate.Gen(provenance.Generator("g" + key.Tuple))
	}
	b.Run("build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			enumerate.New(c, inputs)
		}
	})
	b.Run("per-monomial-delay", func(b *testing.B) {
		e := enumerate.New(c, inputs)
		cur := e.Cursor()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := cur.Next(); !ok {
				cur = e.Cursor()
			}
		}
	})
}
