package agg

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sync"
	"testing"
	"time"
)

// pullSub starts a subscription and returns a pull-style reader plus its
// stop function; the context bounds every blocking read.
func pullSub(ctx context.Context, s *Session, opts ...SubscribeOption) (func() (Update, error, bool), func()) {
	return iter.Pull2(s.Subscribe(ctx, opts...))
}

// mustNext reads one update, failing the test on stream errors.
func mustNext(t *testing.T, next func() (Update, error, bool)) Update {
	t.Helper()
	u, err, ok := next()
	if !ok {
		t.Fatal("subscription ended early")
	}
	if err != nil {
		t.Fatalf("subscription error: %v", err)
	}
	return u
}

// awaitEpoch reads updates until one at or past the wanted epoch arrives
// (coalescing may skip intermediate epochs).
func awaitEpoch(t *testing.T, next func() (Update, error, bool), epoch uint64) Update {
	t.Helper()
	for {
		u := mustNext(t, next)
		if u.Epoch >= epoch {
			return u
		}
	}
}

func TestSubscribeValue(t *testing.T) {
	eng := testEngine(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	p, err := eng.Prepare(ctx, edgeSum)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	s, err := p.Session()
	if err != nil {
		t.Fatalf("Session: %v", err)
	}
	defer s.Close()

	next, stop := pullSub(ctx, s)
	defer stop()
	u := mustNext(t, next)
	if u.Epoch != 0 || u.Kind != "value" || u.Value != "11" {
		t.Fatalf("initial update = %+v, want epoch 0 value 11", u)
	}
	if err := s.Set(SetWeight("w", []int{0, 1}, 10)); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if u = awaitEpoch(t, next, 1); u.Value != "19" {
		t.Fatalf("after w(0,1)=10: value = %q at epoch %d, want 19", u.Value, u.Epoch)
	}
	if err := s.Set(SetWeight("w", []int{1, 2}, 0)); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if u = awaitEpoch(t, next, 2); u.Value != "16" {
		t.Fatalf("after w(1,2)=0: value = %q at epoch %d, want 16", u.Value, u.Epoch)
	}
}

func TestSubscribePointCountDelta(t *testing.T) {
	eng := testEngine(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	p, err := eng.Prepare(ctx, "E(x,y) & S(x)", WithDynamic("E"))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	s, err := p.Session()
	if err != nil {
		t.Fatalf("Session: %v", err)
	}
	defer s.Close()

	point, stopPoint := pullSub(ctx, s, SubscribePoint(2, 1))
	defer stopPoint()
	count, stopCount := pullSub(ctx, s, SubscribeCount())
	defer stopCount()
	delta, stopDelta := pullSub(ctx, s, SubscribeDelta())
	defer stopDelta()

	if u := mustNext(t, point); u.Kind != "point" || u.Value != "0" {
		t.Fatalf("initial point(2,1) = %+v, want 0 (edge absent)", u)
	}
	if u := mustNext(t, count); u.Kind != "count" || u.Count != 3 {
		t.Fatalf("initial count = %+v, want 3", u)
	}
	ud := mustNext(t, delta)
	if ud.Kind != "delta" || !ud.Reset || len(ud.Answers) != 3 {
		t.Fatalf("initial delta = %+v, want reset with 3 answers", ud)
	}

	// Insert E(2,1): S(2) holds, so answer (2,1) appears everywhere.
	if err := s.Set(SetTuple("E", []int{2, 1}, true)); err != nil {
		t.Fatalf("SetTuple: %v", err)
	}
	if u := awaitEpoch(t, point, 1); u.Value != "1" {
		t.Fatalf("point(2,1) after insert = %+v, want 1", u)
	}
	if u := awaitEpoch(t, count, 1); u.Count != 4 {
		t.Fatalf("count after insert = %+v, want 4", u)
	}
	ud = awaitEpoch(t, delta, 1)
	if ud.Reset || len(ud.Added) != 1 || fmt.Sprint(ud.Added[0]) != "[2 1]" || len(ud.Removed) != 0 {
		t.Fatalf("delta after insert = %+v, want added [2 1]", ud)
	}

	// Remove E(2,0): answer (2,0) disappears.
	if err := s.Set(SetTuple("E", []int{2, 0}, false)); err != nil {
		t.Fatalf("SetTuple: %v", err)
	}
	if u := awaitEpoch(t, count, 2); u.Count != 3 {
		t.Fatalf("count after remove = %+v, want 3", u)
	}
	ud = awaitEpoch(t, delta, 2)
	if ud.Reset || len(ud.Removed) != 1 || fmt.Sprint(ud.Removed[0]) != "[2 0]" {
		t.Fatalf("delta after remove = %+v, want removed [2 0]", ud)
	}
}

func TestSubscribeResume(t *testing.T) {
	eng := testEngine(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	p, err := eng.Prepare(ctx, edgeSum)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	s, err := p.Session()
	if err != nil {
		t.Fatalf("Session: %v", err)
	}
	defer s.Close()
	for i := 0; i < 2; i++ {
		if err := s.Set(SetWeight("w", []int{0, 1}, int64(10+i))); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}

	// Resuming at the current epoch owes no initial snapshot: the first
	// delivery is the next commit.
	short, shortCancel := context.WithTimeout(ctx, 200*time.Millisecond)
	defer shortCancel()
	next, stop := pullSub(short, s, SubscribeFrom(2))
	if _, err, ok := next(); !ok || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("resume-at-current yielded %v (ok=%v), want deadline while idle", err, ok)
	}
	stop()

	next, stop = pullSub(ctx, s, SubscribeFrom(2))
	defer stop()
	if err := s.Set(SetWeight("w", []int{1, 2}, 9)); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if u := mustNext(t, next); u.Epoch != 3 {
		t.Fatalf("resume first delivery at epoch %d, want 3", u.Epoch)
	}

	// Resuming below the current epoch re-syncs with a fresh snapshot.
	old, stopOld := pullSub(ctx, s, SubscribeFrom(1))
	defer stopOld()
	if u := mustNext(t, old); u.Epoch != 3 {
		t.Fatalf("stale resume snapshot at epoch %d, want 3", u.Epoch)
	}
}

func TestSubscribeValidation(t *testing.T) {
	eng := testEngine(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	expectErr := func(s *Session, want error, opts ...SubscribeOption) {
		t.Helper()
		for _, err := range s.Subscribe(ctx, opts...) {
			if !errors.Is(err, want) {
				t.Errorf("Subscribe error = %v, want %v", err, want)
			}
			return
		}
		t.Error("Subscribe yielded no error")
	}

	closedP, err := eng.Prepare(ctx, edgeSum)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	closedS, err := closedP.Session()
	if err != nil {
		t.Fatalf("Session: %v", err)
	}
	defer closedS.Close()
	expectErr(closedS, ErrNotEnumerable, SubscribeCount())
	expectErr(closedS, ErrArgument, SubscribePoint(1))
	expectErr(closedS, ErrArgument, SubscribeCount(), SubscribeDelta())

	openP, err := eng.Prepare(ctx, "sum y . [E(x,y)] * w(x,y)")
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	openS, err := openP.Session()
	if err != nil {
		t.Fatalf("Session: %v", err)
	}
	defer openS.Close()
	expectErr(openS, ErrArgument)                 // free variables need a point
	expectErr(openS, ErrArgument, SubscribePoint( // wrong arity
		1, 2))

	nested := NSum([]string{"x", "y"},
		NTimes(NBracket(NAtom("E", "x", "y")), NWeight("w", "x", "y")))
	np, err := eng.Prepare(ctx, "nested edge sum", WithNested(nested))
	if err != nil {
		t.Fatalf("Prepare nested: %v", err)
	}
	ns, err := np.Session()
	if err != nil {
		t.Fatalf("Session nested: %v", err)
	}
	defer ns.Close()
	expectErr(ns, ErrArgument) // nested sessions cannot snapshot
}

func TestSubscribeSessionCloseEndsStream(t *testing.T) {
	eng := testEngine(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	p, err := eng.Prepare(ctx, edgeSum)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	s, err := p.Session()
	if err != nil {
		t.Fatalf("Session: %v", err)
	}

	next, stop := pullSub(ctx, s)
	defer stop()
	mustNext(t, next)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for {
		_, err, ok := next()
		if !ok {
			t.Fatal("stream ended without a terminal error")
		}
		if err != nil {
			if !errors.Is(err, ErrSessionClosed) {
				t.Fatalf("terminal error = %v, want ErrSessionClosed", err)
			}
			return
		}
	}
}

// TestSubscribeStress is the subscriber stress satellite: slow and fast
// subscribers under a sustained hot-key write stream must each observe a
// strictly monotone subsequence of committed epochs, end at the final epoch
// with the final value, and the slow ones must actually coalesce.
func TestSubscribeStress(t *testing.T) {
	eng := ringEngine(t, 64)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	p, err := eng.Prepare(ctx, "sum x, y . [E(x,y)] * w(x,y)")
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	s, err := p.Session()
	if err != nil {
		t.Fatalf("Session: %v", err)
	}
	defer s.Close()

	const commits = 300
	const slowSubs, fastSubs = 3, 3

	// expected[e] is the committed value at epoch e, recorded by the writer.
	expected := make([]Value, commits+1)
	v, err := s.Eval(ctx)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	expected[0] = v

	type obsv struct {
		last      Update
		epochs    []uint64
		values    []Value
		coalesced uint64
	}
	results := make([]obsv, slowSubs+fastSubs)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < slowSubs+fastSubs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			slow := i < slowSubs
			<-start
			for u, err := range s.Subscribe(ctx) {
				if err != nil {
					t.Errorf("subscriber %d: %v", i, err)
					return
				}
				results[i].epochs = append(results[i].epochs, u.Epoch)
				results[i].values = append(results[i].values, u.Value)
				results[i].coalesced += u.Coalesced
				results[i].last = u
				if u.Epoch == commits {
					return
				}
				if slow {
					time.Sleep(2 * time.Millisecond)
				}
			}
		}(i)
	}
	close(start)

	for e := uint64(1); e <= commits; e++ {
		hot := int(e) % 8 // hammer a few hot edges
		if err := s.Set(SetWeight("w", []int{hot, hot + 1}, int64(e%100))); err != nil {
			t.Fatalf("Set at epoch %d: %v", e, err)
		}
		v, err := s.Eval(ctx)
		if err != nil {
			t.Fatalf("Eval at epoch %d: %v", e, err)
		}
		expected[e] = v
		// Pace the writer so the evaluator keeps up per-epoch and the slow
		// subscribers' mailboxes (not just the evaluator's latest-wins
		// target) do the coalescing.
		time.Sleep(200 * time.Microsecond)
	}
	wg.Wait()

	var slowCoalesced uint64
	for i, r := range results {
		if len(r.epochs) == 0 {
			t.Fatalf("subscriber %d saw nothing", i)
		}
		for j := 1; j < len(r.epochs); j++ {
			if r.epochs[j] <= r.epochs[j-1] {
				t.Fatalf("subscriber %d: epochs not strictly monotone: %d then %d", i, r.epochs[j-1], r.epochs[j])
			}
		}
		if got := r.epochs[len(r.epochs)-1]; got != commits {
			t.Errorf("subscriber %d ended at epoch %d, want %d", i, got, commits)
		}
		if r.last.Value != expected[commits] {
			t.Errorf("subscriber %d final value = %q, want %q", i, r.last.Value, expected[commits])
		}
		// Every delivered value must match what the writer recorded for
		// that epoch.
		for j, e := range r.epochs {
			if want := expected[e]; r.values[j] != want {
				t.Errorf("subscriber %d at epoch %d: value %q, want %q", i, e, r.values[j], want)
			}
		}
		if i < slowSubs {
			slowCoalesced += r.coalesced
		}
	}
	if slowCoalesced == 0 {
		t.Error("slow subscribers never coalesced; backpressure path untested")
	}
}

// TestSubscribeWriterZeroAllocOverhead pins the acceptance criterion that
// with zero subscribers the live subsystem adds zero allocations to the
// steady-state update path: the allocation count of Set with a hub present
// (after the last subscriber left) must equal the no-hub baseline exactly.
// (The hub's Notify itself is proven 0-alloc in internal/live; the baseline
// facade allocations come from tuple keying and semiring parsing that
// predate this subsystem.)
func TestSubscribeWriterZeroAllocOverhead(t *testing.T) {
	eng := ringEngine(t, 16)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	p, err := eng.Prepare(ctx, "sum x, y . [E(x,y)] * w(x,y)")
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	s, err := p.Session()
	if err != nil {
		t.Fatalf("Session: %v", err)
	}
	defer s.Close()

	tuples := make([][]int, 16)
	for i := range tuples {
		tuples[i] = []int{i, (i + 1) % 16}
	}
	warm := func() {
		for round := 0; round < 3; round++ {
			for i, tup := range tuples {
				if err := s.Set(SetWeight("w", tup, int64(round+i+1))); err != nil {
					t.Fatalf("Set: %v", err)
				}
			}
		}
	}
	measure := func() float64 {
		warm()
		step := 0
		return testing.AllocsPerRun(200, func() {
			step++
			_ = s.Set(SetWeight("w", tuples[step%16], int64(step%5+1)))
		})
	}

	baseline := measure()

	// One subscriber comes and goes; the hub stays but must cost nothing.
	next, stop := pullSub(ctx, s)
	mustNext(t, next)
	stop()

	if withHub := measure(); withHub != baseline {
		t.Errorf("Set with idle hub allocates %.2f objects/update, baseline %.2f; live adds %+.2f, want 0",
			withHub, baseline, withHub-baseline)
	}
}
