// Package parser provides a textual surface syntax for the weighted query
// language of the paper and for plain first-order formulas.
//
// Two entry points are provided:
//
//   - ParseExpr parses a weighted expression (package internal/expr): sums of
//     products of weight symbols, integer constants and Iverson brackets
//     [ϕ] guarded by first-order formulas, together with the aggregation
//     operator "sum x, y . ...".
//   - ParseFormula parses a first-order formula (package internal/logic).
//
// The grammar accepts both a plain ASCII syntax and the Unicode notation
// emitted by the String methods of the expression and formula types, so the
// output of those methods round-trips through the parser:
//
//	sum x, y, z . [E(x,y) & E(y,z) & E(z,x)] * w(x,y) * w(y,z) * w(z,x)
//	Σ_{x,y,z} ([E(x,y) ∧ E(y,z) ∧ E(z,x)] · w(x,y))
//	exists y . E(x,y) & not E(y,x)
//
// Inside brackets [...] identifiers applied to arguments denote relation
// symbols; outside brackets they denote weight symbols.
package parser

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokenKind identifies the lexical class of a token.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokPlus      // +
	tokStar      // * or ·
	tokLParen    // (
	tokRParen    // )
	tokLBracket  // [
	tokRBracket  // ]
	tokLBrace    // {
	tokRBrace    // }
	tokComma     // ,
	tokDot       // .
	tokEquals    // =
	tokNotEquals // != or ≠
	tokBang      // ! or ¬ or "not"
	tokAnd       // & or ∧ or "and"
	tokOr        // | or ∨ or "or"
	tokSum       // "sum" or Σ or Σ_
	tokExists    // "exists" or ∃
	tokForall    // "forall" or ∀
	tokTrue      // "true"
	tokFalse     // "false"
	tokUnderscore
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokPlus:
		return "'+'"
	case tokStar:
		return "'*'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokEquals:
		return "'='"
	case tokNotEquals:
		return "'!='"
	case tokBang:
		return "'!'"
	case tokAnd:
		return "'&'"
	case tokOr:
		return "'|'"
	case tokSum:
		return "'sum'"
	case tokExists:
		return "'exists'"
	case tokForall:
		return "'forall'"
	case tokTrue:
		return "'true'"
	case tokFalse:
		return "'false'"
	case tokUnderscore:
		return "'_'"
	default:
		return "unknown token"
	}
}

// token is one lexical unit together with its position in the input.
type token struct {
	kind tokenKind
	text string
	pos  int // byte offset in the input
}

// Error is a parse error with a byte position into the original input.
type Error struct {
	// Pos is the byte offset at which the error was detected.
	Pos int
	// Msg describes the problem.
	Msg string
	// Input is the full input string, used to render context.
	Input string
}

// Error implements the error interface, rendering a caret marker under the
// offending position.
func (e *Error) Error() string {
	line := e.Input
	pos := e.Pos
	if pos > len(line) {
		pos = len(line)
	}
	return fmt.Sprintf("parse error at offset %d: %s\n  %s\n  %s^", e.Pos, e.Msg, line, strings.Repeat(" ", pos))
}

func errorAt(input string, pos int, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...), Input: input}
}

// keywords maps reserved identifiers to token kinds.
var keywords = map[string]tokenKind{
	"sum":    tokSum,
	"exists": tokExists,
	"forall": tokForall,
	"not":    tokBang,
	"and":    tokAnd,
	"or":     tokOr,
	"true":   tokTrue,
	"false":  tokFalse,
}

// lex splits the input into tokens.  It returns an error for characters that
// do not belong to the language.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		r, size := utf8.DecodeRuneInString(input[i:])
		switch {
		case unicode.IsSpace(r):
			i += size
		case r == '+':
			toks = append(toks, token{tokPlus, "+", i})
			i += size
		case r == '*' || r == '·':
			toks = append(toks, token{tokStar, "*", i})
			i += size
		case r == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i += size
		case r == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i += size
		case r == '[':
			toks = append(toks, token{tokLBracket, "[", i})
			i += size
		case r == ']':
			toks = append(toks, token{tokRBracket, "]", i})
			i += size
		case r == '{':
			toks = append(toks, token{tokLBrace, "{", i})
			i += size
		case r == '}':
			toks = append(toks, token{tokRBrace, "}", i})
			i += size
		case r == ',':
			toks = append(toks, token{tokComma, ",", i})
			i += size
		case r == '.':
			toks = append(toks, token{tokDot, ".", i})
			i += size
		case r == '=':
			toks = append(toks, token{tokEquals, "=", i})
			i += size
		case r == '≠':
			toks = append(toks, token{tokNotEquals, "!=", i})
			i += size
		case r == '!':
			if strings.HasPrefix(input[i:], "!=") {
				toks = append(toks, token{tokNotEquals, "!=", i})
				i += 2
			} else {
				toks = append(toks, token{tokBang, "!", i})
				i += size
			}
		case r == '¬':
			toks = append(toks, token{tokBang, "!", i})
			i += size
		case r == '&' || r == '∧':
			// Accept both & and && for convenience.
			if r == '&' && strings.HasPrefix(input[i:], "&&") {
				toks = append(toks, token{tokAnd, "&", i})
				i += 2
			} else {
				toks = append(toks, token{tokAnd, "&", i})
				i += size
			}
		case r == '|' || r == '∨':
			if r == '|' && strings.HasPrefix(input[i:], "||") {
				toks = append(toks, token{tokOr, "|", i})
				i += 2
			} else {
				toks = append(toks, token{tokOr, "|", i})
				i += size
			}
		case r == 'Σ':
			toks = append(toks, token{tokSum, "sum", i})
			i += size
		case r == '∃':
			toks = append(toks, token{tokExists, "exists", i})
			i += size
		case r == '∀':
			toks = append(toks, token{tokForall, "forall", i})
			i += size
		case r == '_':
			toks = append(toks, token{tokUnderscore, "_", i})
			i += size
		case unicode.IsDigit(r):
			j := i
			for j < len(input) && input[j] >= '0' && input[j] <= '9' {
				j++
			}
			toks = append(toks, token{tokNumber, input[i:j], i})
			i = j
		case unicode.IsLetter(r):
			j := i
			for j < len(input) {
				rr, sz := utf8.DecodeRuneInString(input[j:])
				if !unicode.IsLetter(rr) && !unicode.IsDigit(rr) && rr != '_' && rr != '\'' {
					break
				}
				j += sz
			}
			word := input[i:j]
			if kind, ok := keywords[strings.ToLower(word)]; ok && word == strings.ToLower(word) {
				toks = append(toks, token{kind, word, i})
			} else {
				toks = append(toks, token{tokIdent, word, i})
			}
			i = j
		default:
			return nil, errorAt(input, i, "unexpected character %q", r)
		}
	}
	toks = append(toks, token{tokEOF, "", len(input)})
	return toks, nil
}
