// Package provenance implements the free commutative semiring (the
// provenance semiring of Green, Karvounarakis and Tannen, used in Section 5
// of the paper): formal sums of products of generators.
//
// Elements are represented explicitly as polynomials (Poly) for testing and
// for small instances; the enumeration machinery of internal/enumerate
// represents them lazily by constant-delay iterators instead, exactly as the
// paper prescribes for data-dependent provenance.
package provenance

import (
	"sort"
	"strings"

	"repro/internal/semiring"
)

// Generator is a named generator of the free semiring (for example a tuple
// identifier e_{ab}).
type Generator string

// Monomial is a finite multiset of generators, kept sorted.
type Monomial []Generator

// NewMonomial builds a sorted monomial from generators.
func NewMonomial(gs ...Generator) Monomial {
	m := append(Monomial(nil), gs...)
	sort.Slice(m, func(i, j int) bool { return m[i] < m[j] })
	return m
}

// Mul returns the union (as multisets) of two monomials.
func (m Monomial) Mul(other Monomial) Monomial {
	out := make(Monomial, 0, len(m)+len(other))
	out = append(out, m...)
	out = append(out, other...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Key returns a canonical string for the monomial.
func (m Monomial) Key() string {
	parts := make([]string, len(m))
	for i, g := range m {
		parts[i] = string(g)
	}
	return strings.Join(parts, "·")
}

// String renders the monomial; the empty monomial renders as "1".
func (m Monomial) String() string {
	if len(m) == 0 {
		return "1"
	}
	return m.Key()
}

// Poly is an element of the free commutative semiring: a formal sum of
// monomials, with multiplicities.
type Poly struct {
	// Terms maps a monomial key to its multiplicity and representative.
	terms map[string]*term
}

type term struct {
	monomial Monomial
	count    int64
}

// NewPoly returns the zero polynomial.
func NewPoly() *Poly { return &Poly{terms: map[string]*term{}} }

// FromMonomials builds a polynomial as the sum of the given monomials.
func FromMonomials(ms ...Monomial) *Poly {
	p := NewPoly()
	for _, m := range ms {
		p.AddMonomial(m, 1)
	}
	return p
}

// Var returns the polynomial consisting of the single generator g.
func Var(g Generator) *Poly { return FromMonomials(NewMonomial(g)) }

// AddMonomial adds count copies of the monomial to the polynomial.
func (p *Poly) AddMonomial(m Monomial, count int64) {
	if count == 0 {
		return
	}
	key := m.Key()
	if t, ok := p.terms[key]; ok {
		t.count += count
		if t.count == 0 {
			delete(p.terms, key)
		}
		return
	}
	p.terms[key] = &term{monomial: append(Monomial(nil), m...), count: count}
}

// NumTerms returns the number of distinct monomials.
func (p *Poly) NumTerms() int { return len(p.terms) }

// TotalMultiplicity returns the sum of multiplicities of all monomials.
func (p *Poly) TotalMultiplicity() int64 {
	var total int64
	for _, t := range p.terms {
		total += t.count
	}
	return total
}

// IsZero reports whether the polynomial has no terms.
func (p *Poly) IsZero() bool { return len(p.terms) == 0 }

// Monomials returns every monomial with its multiplicity, sorted by key.
func (p *Poly) Monomials() []struct {
	Monomial Monomial
	Count    int64
} {
	keys := make([]string, 0, len(p.terms))
	for k := range p.terms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]struct {
		Monomial Monomial
		Count    int64
	}, 0, len(keys))
	for _, k := range keys {
		t := p.terms[k]
		out = append(out, struct {
			Monomial Monomial
			Count    int64
		}{Monomial: t.monomial, Count: t.count})
	}
	return out
}

// Multiplicity returns the multiplicity of a monomial.
func (p *Poly) Multiplicity(m Monomial) int64 {
	if t, ok := p.terms[m.Key()]; ok {
		return t.count
	}
	return 0
}

// Clone returns a deep copy.
func (p *Poly) Clone() *Poly {
	q := NewPoly()
	for _, t := range p.terms {
		q.AddMonomial(t.monomial, t.count)
	}
	return q
}

// String renders the polynomial.
func (p *Poly) String() string {
	if p.IsZero() {
		return "0"
	}
	var parts []string
	for _, t := range p.Monomials() {
		s := t.Monomial.String()
		if t.Count != 1 {
			s = strings.Repeat(s+" + ", int(t.Count)-1) + s
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, " + ")
}

// ---------------------------------------------------------------------------
// The free semiring as a semiring.Semiring instance
// ---------------------------------------------------------------------------

// FreeSemiring is the free commutative semiring over generators, with
// explicit polynomial representation.  It is used for cross-checking the
// iterator-based evaluation on small instances; on large databases the
// elements grow with the data, which is exactly why the paper switches to
// iterator representations.
type FreeSemiring struct{}

// Free is the canonical FreeSemiring instance.
var Free = FreeSemiring{}

func (FreeSemiring) Zero() *Poly { return NewPoly() }
func (FreeSemiring) One() *Poly  { return FromMonomials(NewMonomial()) }

func (FreeSemiring) Add(a, b *Poly) *Poly {
	out := a.Clone()
	for _, t := range b.terms {
		out.AddMonomial(t.monomial, t.count)
	}
	return out
}

func (FreeSemiring) Mul(a, b *Poly) *Poly {
	out := NewPoly()
	for _, ta := range a.terms {
		for _, tb := range b.terms {
			out.AddMonomial(ta.monomial.Mul(tb.monomial), ta.count*tb.count)
		}
	}
	return out
}

func (FreeSemiring) Equal(a, b *Poly) bool {
	if len(a.terms) != len(b.terms) {
		return false
	}
	for k, ta := range a.terms {
		tb, ok := b.terms[k]
		if !ok || ta.count != tb.count {
			return false
		}
	}
	return true
}

func (FreeSemiring) Format(a *Poly) string { return a.String() }

// ---------------------------------------------------------------------------
// Homomorphisms
// ---------------------------------------------------------------------------

// Eval applies the unique semiring homomorphism determined by the generator
// assignment: each generator g is mapped to assign(g), and the polynomial is
// evaluated in the target semiring.  This is the universal property of the
// provenance semiring: any provenance computation specialises to any other
// semiring by such a homomorphism.
func Eval[T any](s semiring.Semiring[T], p *Poly, assign func(Generator) T) T {
	total := s.Zero()
	for _, t := range p.terms {
		prod := s.One()
		for _, g := range t.monomial {
			prod = s.Mul(prod, assign(g))
		}
		total = s.Add(total, semiring.ScalarMul(s, t.count, prod))
	}
	return total
}
