// Program: the frozen, flat execution form of a circuit.
//
// A Circuit is a builder: convenient to grow gate by gate, but expensive to
// execute — every Gate carries its own Children slice and *big.Int, so the
// hot loops of the evaluation, maintenance and enumeration engines chase
// pointers all over the heap and each engine re-derives children, parents,
// ranks and level schedules on the side.  Freezing compiles the circuit once
// into a Program: a struct-of-arrays (CSR) layout with one shared children
// arena, a parallel parents CSR for wave propagation, interned constants
// with a small-int fast path, and the topological ranks plus the level
// schedule baked in.  A Program is immutable and safe for any number of
// concurrent evaluations, dynamic sessions and enumerators; they all borrow
// its bookkeeping instead of rebuilding their own.
//
// The split is the seam between build and execute: Circuit stays the
// construction API (internal/compile and the examples keep building through
// it), while Evaluate, ParallelEvaluateAll, Dynamic and the enumeration
// engine all run on the frozen Program.
package circuit

import (
	"fmt"
	"math/big"
	"sync"
	"time"
	"unsafe"

	"repro/internal/structure"
)

// Program is a frozen CSR compilation of a built Circuit.  All slices are
// internal arenas; the exported accessors hand out read-only views that must
// not be mutated.  Obtain one with Circuit.Program (memoised) or Freeze.
type Program struct {
	numGates int
	output   int

	// kind[id] is the gate kind; arg[id] is the kind-specific payload index:
	// an index into inputKeys for inputs, into constSmall/constBig for
	// constants, into perms for permanent gates, and -1 otherwise.
	kind []uint8
	arg  []int32

	// Children CSR: the operand gates of gate id are
	// children[childStart[id]:childStart[id+1]].  For permanent gates the
	// slice lists the wired entry gates in entry order.
	childStart []int32
	children   []int32

	// Parents CSR, deduplicated: the gates reading gate id are
	// parents[parentStart[id]:parentStart[id+1]], in increasing order.
	parentStart []int32
	parents     []int32

	// rank[id] is the topological rank (longest path from a leaf); children
	// always have strictly smaller rank.  levels lists all gate ids grouped
	// by rank: rank-d gates are levels[levelOff[d]:levelOff[d+1]].
	rank     []int32
	maxRank  int
	levelOff []int32
	levels   []int32

	// Input gates: inputKeys[arg[id]] is the weight key of input gate id;
	// inputIndex resolves a key back to its gate id.
	inputKeys  []structure.WeightKey
	inputIndex map[structure.WeightKey]int32

	// Interned constants: constant gate id has value constSmall[arg[id]]
	// unless constBig[arg[id]] is non-nil (a constant that does not fit
	// int64 — the only case paying big.Int arithmetic on the hot path).
	constSmall []int64
	constBig   []*big.Int

	// Permanent gates: perms[arg[id]] describes the matrix; the wired rows
	// and columns of its entries are permRows/permCols[entOff:entOff+k]
	// where k is the gate's child count, parallel to the children arena.
	perms    []permProgram
	permRows []int32
	permCols []int32

	schedOnce sync.Once
	sched     *Schedule

	// freezeDur is the wall-clock cost of Freeze, recorded here because
	// freezing happens deep inside compilation (no context in scope); the
	// facade reads it back through FreezeDuration to attribute the time to
	// the freeze stage of its trace.
	freezeDur time.Duration
}

// FreezeDuration reports how long Freeze took to build this Program.
func (p *Program) FreezeDuration() time.Duration { return p.freezeDur }

type permProgram struct {
	rows, cols int32
	entOff     int32
}

// Freeze compiles a built circuit into its frozen Program form.  It
// validates the builder's topological-order invariant (every child id
// strictly smaller than its parent's) and panics on circuits violating it,
// so every engine running on a Program may propagate in id/rank order
// without further checks.
func Freeze(c *Circuit) *Program {
	freezeStart := time.Now()
	n := len(c.Gates)
	if n > 1<<31-1 {
		panic("circuit: too many gates to freeze (gate ids exceed int32)")
	}
	p := &Program{
		numGates:   n,
		output:     c.Output,
		kind:       make([]uint8, n),
		arg:        make([]int32, n),
		childStart: make([]int32, n+1),
		rank:       make([]int32, n),
	}

	// Pass 1: kinds, child counts, payload indexes, ranks, parent counts
	// (with duplicates), topological-order validation.
	childCount := 0
	entryCount := 0
	parentCount := make([]int32, n)
	constIdx := map[string]int32{}
	for id := 0; id < n; id++ {
		g := &c.Gates[id]
		p.kind[id] = uint8(g.Kind)
		p.arg[id] = -1
		r := int32(0)
		visit := func(ch int) {
			if ch < 0 || ch >= id {
				panic(fmt.Sprintf("circuit: gate %d has child %d; gates must be stored in topological order (child ids smaller than the parent's)", id, ch))
			}
			if p.rank[ch]+1 > r {
				r = p.rank[ch] + 1
			}
			parentCount[ch]++
		}
		switch g.Kind {
		case KindInput:
			p.arg[id] = int32(len(p.inputKeys))
			p.inputKeys = append(p.inputKeys, g.Key)
		case KindConst:
			key := g.N.String()
			ci, ok := constIdx[key]
			if !ok {
				ci = int32(len(p.constSmall))
				constIdx[key] = ci
				if g.N.IsInt64() {
					p.constSmall = append(p.constSmall, g.N.Int64())
					p.constBig = append(p.constBig, nil)
				} else {
					p.constSmall = append(p.constSmall, 0)
					p.constBig = append(p.constBig, new(big.Int).Set(g.N))
				}
			}
			p.arg[id] = ci
		case KindAdd, KindMul:
			for _, ch := range g.Children {
				visit(ch)
			}
			childCount += len(g.Children)
		case KindPerm:
			p.arg[id] = int32(len(p.perms))
			p.perms = append(p.perms, permProgram{rows: int32(g.Rows), cols: int32(g.Cols), entOff: int32(entryCount)})
			for _, e := range g.Entries {
				visit(e.Gate)
			}
			childCount += len(g.Entries)
			entryCount += len(g.Entries)
		default:
			panic(fmt.Sprintf("circuit: unknown gate kind %v", g.Kind))
		}
		p.rank[id] = r
		if int(r) > p.maxRank {
			p.maxRank = int(r)
		}
		if childCount > 1<<31-1 {
			panic("circuit: too many wires to freeze (children arena offsets exceed int32)")
		}
		p.childStart[id+1] = int32(childCount)
	}
	if n == 0 {
		p.maxRank = -1
	}

	// Pass 2: fill the children arena and the permanent-entry arenas.  The
	// entries of each permanent gate are stored column-major (stably sorted
	// by column), so evaluation can run the column dynamic program straight
	// off the arena without materialising a per-column matrix.
	p.children = make([]int32, childCount)
	p.permRows = make([]int32, entryCount)
	p.permCols = make([]int32, entryCount)
	for id := 0; id < n; id++ {
		g := &c.Gates[id]
		off := p.childStart[id]
		switch g.Kind {
		case KindAdd, KindMul:
			for i, ch := range g.Children {
				p.children[off+int32(i)] = int32(ch)
			}
		case KindPerm:
			ent := p.perms[p.arg[id]].entOff
			place := make([]int32, g.Cols+1)
			for _, e := range g.Entries {
				place[e.Col+1]++
			}
			for col := 0; col < g.Cols; col++ {
				place[col+1] += place[col]
			}
			for _, e := range g.Entries {
				i := place[e.Col]
				place[e.Col]++
				p.children[off+i] = int32(e.Gate)
				p.permRows[ent+i] = int32(e.Row)
				p.permCols[ent+i] = int32(e.Col)
			}
		}
	}

	// Pass 3: parents CSR.  Iterating parents in increasing id keeps each
	// child's list sorted, so duplicates (a child wired several times into
	// one gate) are adjacent and compact away in place.
	start := make([]int32, n+1)
	for id := 0; id < n; id++ {
		start[id+1] = start[id] + parentCount[id]
	}
	raw := make([]int32, start[n])
	fill := make([]int32, n)
	for id := 0; id < n; id++ {
		for _, ch := range p.children[p.childStart[id]:p.childStart[id+1]] {
			raw[start[ch]+fill[ch]] = int32(id)
			fill[ch]++
		}
	}
	p.parentStart = make([]int32, n+1)
	p.parents = raw[:0]
	for id := 0; id < n; id++ {
		lo, hi := start[id], start[id+1]
		for i := lo; i < hi; i++ {
			if i > lo && raw[i] == raw[i-1] {
				continue
			}
			p.parents = append(p.parents, raw[i])
		}
		p.parentStart[id+1] = int32(len(p.parents))
	}

	// Pass 4: level schedule by counting sort on rank.
	p.levelOff = make([]int32, p.maxRank+2)
	for _, r := range p.rank {
		p.levelOff[r+1]++
	}
	for d := 0; d < len(p.levelOff)-1; d++ {
		p.levelOff[d+1] += p.levelOff[d]
	}
	p.levels = make([]int32, n)
	levelFill := make([]int32, p.maxRank+1)
	for id := 0; id < n; id++ {
		r := p.rank[id]
		p.levels[p.levelOff[r]+levelFill[r]] = int32(id)
		levelFill[r]++
	}

	// Input index: derived from the gates themselves so that hand-built
	// circuits (no builder map) freeze correctly too.
	p.inputIndex = make(map[structure.WeightKey]int32, len(p.inputKeys))
	for id := 0; id < n; id++ {
		if p.kind[id] == uint8(KindInput) {
			p.inputIndex[p.inputKeys[p.arg[id]]] = int32(id)
		}
	}
	p.freezeDur = time.Since(freezeStart)
	return p
}

// NumGates returns the number of gates.
func (p *Program) NumGates() int { return p.numGates }

// OutputGate returns the output gate id, or -1 when none was set.
func (p *Program) OutputGate() int { return p.output }

// GateKind returns the kind of gate id.
func (p *Program) GateKind(id int) Kind { return Kind(p.kind[id]) }

// ChildIDs returns the operand gates of gate id as a view into the shared
// children arena (entry gates in entry order for permanent gates).  The
// returned slice must not be modified.
func (p *Program) ChildIDs(id int) []int32 {
	return p.children[p.childStart[id]:p.childStart[id+1]]
}

// ParentIDs returns the deduplicated parents of gate id, in increasing
// order, as a view into the shared parents arena.  The returned slice must
// not be modified.
func (p *Program) ParentIDs(id int) []int32 {
	return p.parents[p.parentStart[id]:p.parentStart[id+1]]
}

// Rank returns the topological rank of gate id (the length of the longest
// path from a leaf); every child has a strictly smaller rank.
func (p *Program) Rank(id int) int { return int(p.rank[id]) }

// Depth returns the maximum rank, i.e. the circuit depth (-1 for an empty
// program).
func (p *Program) Depth() int { return p.maxRank }

// LevelGates returns the ids of all gates of rank d, in increasing order, as
// a view into the baked level schedule.  The returned slice must not be
// modified.
func (p *Program) LevelGates(d int) []int32 {
	return p.levels[p.levelOff[d]:p.levelOff[d+1]]
}

// NumInputs returns the number of input gates.
func (p *Program) NumInputs() int { return len(p.inputKeys) }

// InputKey returns the weight key of input gate id; it panics when id is not
// an input gate.
func (p *Program) InputKey(id int) structure.WeightKey {
	if p.kind[id] != uint8(KindInput) {
		panic(fmt.Sprintf("circuit: gate %d is not an input gate", id))
	}
	return p.inputKeys[p.arg[id]]
}

// InputGate returns the gate id of the input with the given weight key, or
// -1 when the program does not reference it.
func (p *Program) InputGate(key structure.WeightKey) int {
	if id, ok := p.inputIndex[key]; ok {
		return int(id)
	}
	return -1
}

// ConstIsZero reports whether constant gate id has value 0; it panics when
// id is not a constant gate.
func (p *Program) ConstIsZero(id int) bool {
	ci := p.constArg(id)
	return p.constBig[ci] == nil && p.constSmall[ci] == 0
}

// ConstBig returns the value of constant gate id as a fresh big.Int; it
// panics when id is not a constant gate.
func (p *Program) ConstBig(id int) *big.Int {
	ci := p.constArg(id)
	if b := p.constBig[ci]; b != nil {
		return new(big.Int).Set(b)
	}
	return big.NewInt(p.constSmall[ci])
}

func (p *Program) constArg(id int) int32 {
	if p.kind[id] != uint8(KindConst) {
		panic(fmt.Sprintf("circuit: gate %d is not a constant gate", id))
	}
	return p.arg[id]
}

// PermShape returns the matrix dimensions of permanent gate id; it panics
// when id is not a permanent gate.
func (p *Program) PermShape(id int) (rows, cols int) {
	pm := p.perms[p.permArg(id)]
	return int(pm.rows), int(pm.cols)
}

// ForEachPermEntry calls f for every wired entry (row, col, child gate) of
// permanent gate id, in column-major order (entries stably sorted by column
// at freeze time); it panics when id is not a permanent gate.
func (p *Program) ForEachPermEntry(id int, f func(row, col, gate int)) {
	pm := p.perms[p.permArg(id)]
	kids := p.ChildIDs(id)
	for i, g := range kids {
		f(int(p.permRows[pm.entOff+int32(i)]), int(p.permCols[pm.entOff+int32(i)]), int(g))
	}
}

func (p *Program) permArg(id int) int32 {
	if p.kind[id] != uint8(KindPerm) {
		panic(fmt.Sprintf("circuit: gate %d is not a permanent gate", id))
	}
	return p.arg[id]
}

// Schedule materialises the baked level schedule as a *Schedule (levels as
// [][]int), for callers that consume the legacy schedule shape.  The result
// is built once and shared; it must not be modified.
func (p *Program) Schedule() *Schedule {
	p.schedOnce.Do(func() {
		levels := make([][]int, p.maxRank+1)
		for d := range levels {
			lg := p.LevelGates(d)
			lvl := make([]int, len(lg))
			for i, id := range lg {
				lvl[i] = int(id)
			}
			levels[d] = lvl
		}
		p.sched = &Schedule{Levels: levels, gates: p.numGates}
	})
	return p.sched
}

// Footprint returns the approximate resident size of the program in bytes:
// every arena at its element size, the interned constants, the input keys
// and an estimate of the input-index map.  It deliberately excludes the
// builder Circuit the program was frozen from — the point of the frozen form
// is that execution engines and caches can drop or share everything else.
func (p *Program) Footprint() int64 {
	bytes := int64(len(p.kind)) // 1 byte per kind
	bytes += 4 * int64(len(p.arg)+len(p.childStart)+len(p.children)+
		len(p.parentStart)+len(p.parents)+len(p.rank)+len(p.levelOff)+len(p.levels)+
		len(p.permRows)+len(p.permCols))
	bytes += 12 * int64(len(p.perms))
	bytes += 8 * int64(len(p.constSmall))
	for _, b := range p.constBig {
		bytes += 8 // slice slot
		if b != nil {
			bytes += int64(len(b.Bytes())) + 24
		}
	}
	for _, k := range p.inputKeys {
		// Key struct (two string headers) plus the string bytes, counted once
		// here and once for the map copy of the key.
		bytes += 2 * (32 + int64(len(k.Weight)+len(k.Tuple)))
	}
	bytes += int64(len(p.inputIndex)) * 16 // map slot overhead (value + buckets, approximate)
	return bytes
}

// LegacyFootprint returns the approximate resident size in bytes of the
// builder (array-of-structs) layout: one Gate struct per gate plus its
// privately allocated Children slice, permanent entries, big.Int constant
// and key strings.  It is the baseline against which Program.Footprint is
// compared in bench experiment E14.
func (c *Circuit) LegacyFootprint() int64 {
	bytes := int64(0)
	for i := range c.Gates {
		g := &c.Gates[i]
		bytes += int64(unsafe.Sizeof(Gate{}))
		bytes += 8 * int64(cap(g.Children))
		bytes += int64(unsafe.Sizeof(PermEntry{})) * int64(cap(g.Entries))
		if g.N != nil {
			bytes += 24 + int64((g.N.BitLen()+7)/8)
		}
		bytes += int64(len(g.Key.Weight) + len(g.Key.Tuple))
	}
	for k := range c.inputIndex {
		bytes += 32 + int64(len(k.Weight)+len(k.Tuple)) + 16
	}
	return bytes
}
