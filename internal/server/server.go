// Package server implements aggserve, the long-lived query-serving
// subsystem: databases are loaded once at startup, weighted expressions are
// compiled on demand through the Theorem 6 compiler and kept in an LRU cache
// of compiled circuits, and many concurrent clients then share each
// compilation — linear-time semiring evaluation over the level-parallel
// engine (/query), logarithmic-time point queries and weight/tuple updates
// on named dynamic sessions (/point, /update, Theorem 8), and constant-delay
// enumeration streamed as NDJSON (/enumerate, Theorem 24).
//
// The cache is keyed by (database, canonical expression, semiring, options),
// so repeated queries skip compilation entirely; concurrent cold requests
// for the same key share a single compile.
package server

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/compile"
	"repro/internal/dbio"
	"repro/internal/dynamicq"
	"repro/internal/enumerate"
	"repro/internal/parser"
)

// Options configures a Server.
type Options struct {
	// CacheSize bounds the number of cached compiled queries (≤ 0 selects
	// the default of 128).
	CacheSize int
	// Workers is the default worker-pool size per circuit evaluation and
	// enumeration preprocessing pass (≤ 0 selects GOMAXPROCS).
	Workers int
	// MaxVars is forwarded to compile.Options (0 keeps the compiler
	// default).
	MaxVars int
}

// Server serves compiled weighted queries over one or more mounted
// databases.  All methods and the HTTP handler are safe for concurrent use.
type Server struct {
	opts  Options
	cache *lruCache
	stats Stats
	start time.Time

	mu       sync.RWMutex
	dbs      map[string]*dbio.Database
	sessions map[string]*sessionHandle
}

// New creates a server with no databases mounted.
func New(opts Options) *Server {
	return &Server{
		opts:     opts,
		cache:    newLRUCache(opts.CacheSize),
		start:    time.Now(),
		dbs:      map[string]*dbio.Database{},
		sessions: map[string]*sessionHandle{},
	}
}

// Stats exposes the server's counters (primarily for tests and benchmarks;
// HTTP clients use GET /stats).
func (s *Server) Stats() *Stats { return &s.stats }

// MountDatabase parses a database from r in the dbio text format and mounts
// it under the given name.
func (s *Server) MountDatabase(name string, r io.Reader) error {
	db, err := dbio.Read(r)
	if err != nil {
		return err
	}
	s.MountDatabaseValue(name, db)
	return nil
}

// MountDatabaseValue mounts an already-loaded database.  Remounting an
// existing name replaces it for new compilations; cached circuits and live
// sessions keep serving the snapshot they were compiled against.
func (s *Server) MountDatabaseValue(name string, db *dbio.Database) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dbs[name] = db
}

// database resolves a database by name; an empty name selects "default" or,
// failing that, the only mounted database.
func (s *Server) database(name string) (string, *dbio.Database, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if name == "" {
		if db, ok := s.dbs["default"]; ok {
			return "default", db, nil
		}
		if len(s.dbs) == 1 {
			for n, db := range s.dbs {
				return n, db, nil
			}
		}
		return "", nil, fmt.Errorf("no database named in the request and no unambiguous default among %v", s.databaseNames())
	}
	if db, ok := s.dbs[name]; ok {
		return name, db, nil
	}
	return "", nil, fmt.Errorf("unknown database %q (mounted: %v)", name, s.databaseNames())
}

// databaseNames must be called with s.mu held.
func (s *Server) databaseNames() []string {
	names := make([]string, 0, len(s.dbs))
	for n := range s.dbs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// compiledQuery is one cache entry: a semiring-agnostic shared compilation,
// the database weights converted once into the entry's carrier (shared by
// every read-only /query evaluation), and, lazily, the implicit session used
// by session-less /point requests.
type compiledQuery struct {
	sh  *dynamicq.Shared
	sem Semiring
	db  *dbio.Database
	cw  ConvertedWeights

	mu       sync.Mutex // guards implicit
	implicit Session
}

// session returns the entry's implicit session, building it on first use.
// The caller must hold cq.mu while using the returned session.
func (cq *compiledQuery) session() Session {
	if cq.implicit == nil {
		cq.implicit = cq.sem.NewSession(cq.sh, cq.db.W)
	}
	return cq.implicit
}

// programBytes reports the resident size of the entry's frozen Program — the
// artefact every session and evaluation of this entry shares.
func (cq *compiledQuery) programBytes() int64 { return cq.sh.Result().Program.Footprint() }

func (s *Server) compileOptions(dynamic []string) compile.Options {
	return compile.Options{DynamicRelations: dynamic, MaxVars: s.opts.MaxVars}
}

// optionsKey canonically encodes the compile options that are part of the
// cache key.
func (s *Server) optionsKey(dynamic []string) string {
	dyn := append([]string(nil), dynamic...)
	sort.Strings(dyn)
	return fmt.Sprintf("dyn=%s;maxvars=%d", strings.Join(dyn, ","), s.opts.MaxVars)
}

// compiled resolves (database, expression, semiring, options) through the
// LRU cache, compiling at most once per key.  The bool reports a cache hit.
func (s *Server) compiled(dbName, exprText, semName string, dynamic []string) (*compiledQuery, bool, error) {
	dbName, db, err := s.database(dbName)
	if err != nil {
		return nil, false, err
	}
	sem, err := lookupSemiring(semName)
	if err != nil {
		return nil, false, err
	}
	if strings.TrimSpace(exprText) == "" {
		return nil, false, fmt.Errorf("missing expression")
	}
	e, err := parser.ParseExpr(exprText)
	if err != nil {
		return nil, false, fmt.Errorf("parsing expression: %w", err)
	}
	key := strings.Join([]string{"query", dbName, parser.FormatExpr(e), sem.Name(), s.optionsKey(dynamic)}, "\x00")

	v, hit, err := s.cache.getOrCreate(key, func() (any, error) {
		s.stats.Compiles.Add(1)
		var sh *dynamicq.Shared
		var cerr error
		timed(&s.stats.CompileNanos, func() {
			sh, cerr = dynamicq.CompileShared(db.A, e, s.compileOptions(dynamic))
		})
		if cerr != nil {
			return nil, cerr
		}
		return &compiledQuery{sh: sh, sem: sem, db: db, cw: sem.Convert(db.W)}, nil
	})
	if err != nil {
		return nil, false, err
	}
	if hit {
		s.stats.CacheHits.Add(1)
	} else {
		s.stats.CacheMisses.Add(1)
	}
	return v.(*compiledQuery), hit, nil
}

// compiledEnum is a cached constant-delay enumerator.  Entries never receive
// updates, so cursors may be drawn and driven concurrently and the answer
// total is a constant computed once at build time.
type compiledEnum struct {
	ans   *enumerate.Answers
	vars  []string
	total int64
}

// programBytes reports the resident size of the enumerator's frozen Program.
func (ce *compiledEnum) programBytes() int64 { return ce.ans.Result().Program.Footprint() }

// compiledEnumerator resolves (database, formula, vars) through the cache.
func (s *Server) compiledEnumerator(dbName, phiText string, vars []string) (*compiledEnum, bool, error) {
	dbName, db, err := s.database(dbName)
	if err != nil {
		return nil, false, err
	}
	if strings.TrimSpace(phiText) == "" {
		return nil, false, fmt.Errorf("missing formula")
	}
	if len(vars) == 0 {
		return nil, false, fmt.Errorf("missing answer variables")
	}
	phi, err := parser.ParseFormula(phiText)
	if err != nil {
		return nil, false, fmt.Errorf("parsing formula: %w", err)
	}
	key := strings.Join([]string{"enum", dbName, parser.FormatFormula(phi), strings.Join(vars, ","), s.optionsKey(nil)}, "\x00")

	v, hit, err := s.cache.getOrCreate(key, func() (any, error) {
		s.stats.Compiles.Add(1)
		var ans *enumerate.Answers
		var cerr error
		timed(&s.stats.CompileNanos, func() {
			ans, cerr = enumerate.EnumerateAnswersParallel(db.A, phi, vars, s.compileOptions(nil), s.workers(0))
		})
		if cerr != nil {
			return nil, cerr
		}
		return &compiledEnum{ans: ans, vars: vars, total: ans.Count()}, nil
	})
	if err != nil {
		return nil, false, err
	}
	if hit {
		s.stats.CacheHits.Add(1)
	} else {
		s.stats.CacheMisses.Add(1)
	}
	return v.(*compiledEnum), hit, nil
}

// sessionHandle is a named session with its own lock: point queries and
// update batches on one session serialise, while distinct sessions proceed
// in parallel.
type sessionHandle struct {
	name     string
	db       string
	expr     string
	semiring string

	mu   sync.Mutex
	sess Session
}

// CreateSession compiles (through the cache) and registers a named session.
func (s *Server) CreateSession(name, dbName, exprText, semName string, dynamic []string) (*sessionHandle, bool, error) {
	if name == "" {
		return nil, false, fmt.Errorf("missing session name")
	}
	cq, hit, err := s.compiled(dbName, exprText, semName, dynamic)
	if err != nil {
		return nil, hit, err
	}
	h := &sessionHandle{name: name, db: dbName, expr: exprText, semiring: semName}
	h.sess = cq.sem.NewSession(cq.sh, cq.db.W)

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.sessions[name]; exists {
		return nil, hit, fmt.Errorf("session %q already exists: %w", name, errConflict)
	}
	s.sessions[name] = h
	s.stats.Sessions.Add(1)
	return h, hit, nil
}

// DeleteSession unregisters a named session, releasing its evaluator state.
// In-flight requests holding the handle finish normally; later requests see
// an unknown session.
func (s *Server) DeleteSession(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sessions[name]; !ok {
		return fmt.Errorf("unknown session %q", name)
	}
	delete(s.sessions, name)
	return nil
}

func (s *Server) session(name string) (*sessionHandle, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if h, ok := s.sessions[name]; ok {
		return h, nil
	}
	return nil, fmt.Errorf("unknown session %q", name)
}

// workers resolves a per-request worker count against the server default.
func (s *Server) workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return s.opts.Workers
}
