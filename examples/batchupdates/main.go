// Batch updates through the repro/agg facade: maintain a compiled weighted
// query under a stream of weight and tuple changes, applying them one at a
// time and in atomic batches, and compare the two (identical results, one
// propagation wave per batch instead of one per update).
//
//	go run ./examples/batchupdates
package main

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/agg"
)

func main() {
	ctx := context.Background()

	// A preferential-attachment graph: a few high-degree hubs, many leaves —
	// the shape under which hot-key update streams concentrate on vertices
	// with large propagation cones.
	eng, err := agg.OpenSource(agg.Source{Kind: "pref-attach", N: 3000, Degree: 2, Seed: 7})
	if err != nil {
		panic(err)
	}
	db := eng.Database()
	fmt.Printf("database: %d elements, %d tuples\n", db.Elements(), db.TupleCount())

	// Weighted 2-paths with distinct endpoints, with E declared dynamic so
	// tuple updates are allowed too:
	//   f = Σ_{x,y,z} [E(x,y) ∧ E(y,z) ∧ x≠z] · u(x) · u(z).
	// One Prepare pays Theorem 6 once; both sessions below share it.
	p, err := eng.Prepare(ctx,
		"sum x, y, z . [E(x,y) & E(y,z) & !(x = z)] * u(x) * u(z)",
		agg.WithDynamic("E"))
	if err != nil {
		panic(err)
	}
	perS, err := p.Session()
	if err != nil {
		panic(err)
	}
	defer perS.Close()
	batchS, err := p.Session()
	if err != nil {
		panic(err)
	}
	defer batchS.Close()
	v0, err := perS.Eval(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("initial weighted 2-path count: %s\n\n", v0)

	// A hot-key stream: weight updates concentrated on the 32 highest-degree
	// vertices, plus occasional Gaifman-preserving edge toggles.
	edges := db.Tuples("E")
	deg := make([]int, db.Elements())
	for _, e := range edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	hubs := make([]int, 0, 32)
	for v := 0; v < db.Elements() && len(hubs) < 32; v++ {
		if deg[v] >= 8 {
			hubs = append(hubs, v)
		}
	}
	r := rand.New(rand.NewSource(1))
	const total = 20000
	stream := make([]agg.Change, total)
	for i := range stream {
		if i%50 == 49 {
			// Toggling an existing edge preserves the Gaifman graph.
			e := edges[r.Intn(len(edges))]
			stream[i] = agg.SetTuple("E", e, r.Intn(2) == 0)
		} else {
			hub := hubs[r.Intn(len(hubs))]
			stream[i] = agg.SetWeight("u", []int{hub}, int64(r.Intn(9)+1))
		}
	}

	// One propagation wave per update...
	start := time.Now()
	for _, ch := range stream {
		if err := perS.Set(ch); err != nil {
			panic(err)
		}
	}
	perDur := time.Since(start)

	// ...versus one wave per batch of 1000: leaf changes are applied first
	// (duplicates coalesce, the last value wins) and every affected gate is
	// recomputed exactly once per batch, in topological-rank order.
	const batchSize = 1000
	start = time.Now()
	for lo := 0; lo < len(stream); lo += batchSize {
		hi := min(lo+batchSize, len(stream))
		if err := batchS.ApplyBatch(stream[lo:hi]); err != nil {
			panic(err)
		}
	}
	batchDur := time.Since(start)

	perVal, _ := perS.Eval(ctx)
	batchVal, _ := batchS.Eval(ctx)
	fmt.Printf("per-update loop: %d updates in %v (%.0f upd/s) → value %s\n",
		total, perDur.Round(time.Millisecond), float64(total)/perDur.Seconds(), perVal)
	fmt.Printf("ApplyBatch(%d):  %d updates in %v (%.0f upd/s) → value %s\n",
		batchSize, total, batchDur.Round(time.Millisecond), float64(total)/batchDur.Seconds(), batchVal)
	if perVal != batchVal {
		panic("batched and per-update application disagree")
	}
	fmt.Printf("speedup: %.1fx, identical values\n\n", float64(perDur)/float64(batchDur))

	// Batches are all-or-nothing: one invalid change rejects the whole batch.
	err = batchS.ApplyBatch([]agg.Change{
		agg.SetWeight("u", []int{hubs[0]}, 99),
		agg.SetWeight("nope", []int{0}, 1),
	})
	fmt.Printf("invalid batch rejected atomically: %v\n", err)
	after, _ := batchS.Eval(ctx)
	fmt.Printf("value unchanged by the rejected batch: %s\n", after)
}
