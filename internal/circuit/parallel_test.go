package circuit

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/provenance"
	"repro/internal/semiring"
	"repro/internal/structure"
)

// hasPermGate reports whether the circuit contains a permanent gate.
func hasPermGate(c *Circuit) bool {
	for _, g := range c.Gates {
		if g.Kind == KindPerm {
			return true
		}
	}
	return false
}

// checkEquivalence asserts ParallelEvaluateAll matches EvaluateAll
// gate-for-gate in the given semiring, across several worker counts and
// with both on-the-fly and precomputed schedules.
func checkEquivalence[T any](t *testing.T, name string, c *Circuit, s semiring.Semiring[T], v Valuation[T]) {
	t.Helper()
	want := EvaluateAll(c, s, v)
	sched := NewSchedule(c)
	for _, workers := range []int{0, 1, 2, 4, 7} {
		for _, opts := range []EvalOptions{
			{Workers: workers},
			{Workers: workers, Schedule: sched},
		} {
			got := ParallelEvaluateAll(c, s, v, opts)
			if len(got) != len(want) {
				t.Fatalf("%s workers=%d: got %d values, want %d", name, workers, len(got), len(want))
			}
			for id := range want {
				if !s.Equal(got[id], want[id]) {
					t.Fatalf("%s workers=%d: gate %d = %s, want %s",
						name, workers, id, s.Format(got[id]), s.Format(want[id]))
				}
			}
		}
	}
}

// TestParallelEvaluateAllEquivalence checks the parallel evaluator against
// the sequential one on random circuits with permanent gates, in the
// natural-number, tropical (min-plus) and provenance semirings.  Run under
// -race this also exercises the claim that gates within a level race on
// nothing.
func TestParallelEvaluateAllEquivalence(t *testing.T) {
	sawPerm := false
	for round := 0; round < 6; round++ {
		rng := rand.New(rand.NewSource(int64(round) + 1))
		nInputs := rng.Intn(6) + 4
		c := randomCircuit(rng, nInputs, rng.Intn(300)+100)
		sawPerm = sawPerm || hasPermGate(c)

		vals := randomValues(rng, nInputs)
		natVal := valuationFor(vals)
		checkEquivalence[int64](t, fmt.Sprintf("nat/round%d", round), c, semiring.Nat, natVal)

		tropVal := func(key structure.WeightKey) (semiring.Ext, bool) {
			v, ok := natVal(key)
			return semiring.Fin(v), ok
		}
		checkEquivalence[semiring.Ext](t, fmt.Sprintf("minplus/round%d", round), c, semiring.MinPlus, tropVal)

		provVal := func(key structure.WeightKey) (*provenance.Poly, bool) {
			if _, ok := natVal(key); !ok {
				return nil, false
			}
			return provenance.FromMonomials(provenance.NewMonomial(provenance.Generator("g" + key.Tuple))), true
		}
		checkEquivalence[*provenance.Poly](t, fmt.Sprintf("provenance/round%d", round), c, provenance.Free, provVal)
	}
	if !sawPerm {
		t.Fatal("no random circuit contained a permanent gate; generator is miscalibrated")
	}
}

// TestParallelEvaluateEquivalence checks the output-gate shortcut.
func TestParallelEvaluateEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const nInputs = 6
	c := randomCircuit(rng, nInputs, 200)
	val := valuationFor(randomValues(rng, nInputs))
	want := Evaluate[int64](c, semiring.Nat, val)
	got := ParallelEvaluate[int64](c, semiring.Nat, val, EvalOptions{Workers: 3})
	if got != want {
		t.Fatalf("ParallelEvaluate = %d, want %d", got, want)
	}
}

// TestNewSchedule checks the structural invariants of the level schedule:
// every gate appears exactly once, children sit on strictly lower levels,
// and the depth agrees with Statistics.
func TestNewSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := randomCircuit(rng, 8, 400)
	sched := NewSchedule(c)
	if sched.NumGates() != c.NumGates() {
		t.Fatalf("schedule covers %d gates, circuit has %d", sched.NumGates(), c.NumGates())
	}
	level := make([]int, c.NumGates())
	seen := make([]bool, c.NumGates())
	for d, lvl := range sched.Levels {
		if len(lvl) == 0 {
			t.Errorf("level %d is empty", d)
		}
		for _, id := range lvl {
			if seen[id] {
				t.Fatalf("gate %d scheduled twice", id)
			}
			seen[id] = true
			level[id] = d
		}
	}
	for id := range seen {
		if !seen[id] {
			t.Fatalf("gate %d not scheduled", id)
		}
	}
	for id := range c.Gates {
		for _, ch := range c.children(id) {
			if level[ch] >= level[id] {
				t.Fatalf("child %d (level %d) not below gate %d (level %d)", ch, level[ch], id, level[id])
			}
		}
	}
	if want := c.Statistics().Depth; sched.Depth() != want {
		t.Fatalf("schedule depth %d, Statistics depth %d", sched.Depth(), want)
	}
	if sched.MaxWidth() <= 0 {
		t.Fatal("MaxWidth must be positive for a non-empty circuit")
	}
}

// TestScheduleMismatchPanics checks that passing a stale schedule is caught.
func TestScheduleMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := randomCircuit(rng, 5, 60)
	sched := NewSchedule(c)
	c.ConstInt(41) // extend the circuit behind the schedule's back
	defer func() {
		if recover() == nil {
			t.Fatal("expected a panic for a stale schedule")
		}
	}()
	ParallelEvaluateAll[int64](c, semiring.Nat, func(structure.WeightKey) (int64, bool) { return 1, true },
		EvalOptions{Workers: 2, Schedule: sched})
}

// benchmarkCircuit builds a wide, shallow circuit with ≥ 10k gates dominated
// by permanent gates, the shape produced by the compiler on large databases.
func benchmarkCircuit(b *testing.B) (*Circuit, Valuation[int64]) {
	b.Helper()
	c := NewBuilder()
	rng := rand.New(rand.NewSource(42))
	var inputs []int
	for i := 0; i < 3000; i++ {
		inputs = append(inputs, c.Input(structure.MakeWeightKey("w", structure.Tuple{i})))
	}
	var permGates []int
	for i := 0; i < 7000; i++ {
		const rows, cols = 3, 6
		var entries []PermEntry
		for r := 0; r < rows; r++ {
			for col := 0; col < cols; col++ {
				entries = append(entries, PermEntry{Row: r, Col: col, Gate: inputs[rng.Intn(len(inputs))]})
			}
		}
		permGates = append(permGates, c.Perm(rows, cols, entries))
	}
	var sums []int
	for i := 0; i+10 <= len(permGates); i += 10 {
		prod := c.Mul(permGates[i], permGates[i+1])
		sums = append(sums, c.Add(append([]int{prod}, permGates[i+2:i+10]...)...))
	}
	c.SetOutput(c.Add(sums...))
	if c.NumGates() < 10000 {
		b.Fatalf("benchmark circuit has only %d gates, want ≥ 10000", c.NumGates())
	}
	return c, func(key structure.WeightKey) (int64, bool) { return int64(len(key.Tuple)%5) + 1, true }
}

// BenchmarkEvaluateAllSequential is the sequential baseline on the ≥10k-gate
// permanent-heavy circuit.
func BenchmarkEvaluateAllSequential(b *testing.B) {
	c, val := benchmarkCircuit(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EvaluateAll[int64](c, semiring.Nat, val)
	}
}

// BenchmarkEvaluateAllParallel measures the level-parallel evaluator with a
// precomputed schedule at GOMAXPROCS workers; on a multi-core machine it
// should beat BenchmarkEvaluateAllSequential.
func BenchmarkEvaluateAllParallel(b *testing.B) {
	c, val := benchmarkCircuit(b)
	sched := NewSchedule(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ParallelEvaluateAll[int64](c, semiring.Nat, val, EvalOptions{Schedule: sched})
	}
}
