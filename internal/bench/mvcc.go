package bench

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/agg"
	"repro/internal/compile"
	"repro/internal/dynamicq"
	"repro/internal/expr"
	"repro/internal/logic"
	"repro/internal/semiring"
	"repro/internal/structure"
	"repro/internal/workload"
)

// e18Expr is the free-variable form of the E13 weighted 2-path query: the
// point reads evaluate it at a vertex x while the writer streams hot-key
// updates to the hub weights sitting in every answer's propagation cone.
const e18Expr = "sum y, z . [E(x,y) & E(y,z) & !(x = z)] * u(y) * u(z)"

// e18PathQuery is the same query as an AST, for the plain-engine baseline.
func e18PathQuery() expr.Expr {
	return expr.Agg([]string{"y", "z"}, expr.Times(
		expr.Guard(logic.Conj(logic.R("E", "x", "y"), logic.R("E", "y", "z"), logic.Neg(logic.Equal("x", "z")))),
		expr.W("u", "y"), expr.W("u", "z"),
	))
}

// e18Measurements holds one E18 run: writer throughput through the plain
// engine and through the MVCC session path (solo and under readers), and the
// readers' p99 point-read latency idle versus under a sustained write stream.
type e18Measurements struct {
	n, updates, reads, readers int

	plainRate float64 // upd/s, dynamicq engine, no facade, no readers
	soloRate  float64 // upd/s, agg session, no readers
	rate1     float64 // upd/s, agg session, 1 concurrent paced reader
	rate8     float64 // upd/s, agg session, 8 concurrent paced readers

	idleP99 time.Duration // reader p99, no writer
	p99r1   time.Duration // reader p99, 1 reader under the write stream
	p99r8   time.Duration // reader p99, 8 readers under the write stream
}

// e18Setup compiles the workload behind the agg facade and returns the
// session, the hot-key update stream, and the read points.
func e18Setup(n, updates int) (*workload.Database, *agg.Session, []agg.Change, []int) {
	db := workload.PreferentialAttachment(n, 2, 11)
	eng := agg.Open(agg.FromStructure(db.A, db.Weights()))
	p, err := eng.Prepare(context.Background(), e18Expr)
	if err != nil {
		panic(fmt.Sprintf("E18: prepare: %v", err))
	}
	s, err := p.Session()
	if err != nil {
		panic(fmt.Sprintf("E18: session: %v", err))
	}
	hubs := hotVertices(db, 64)
	r := rand.New(rand.NewSource(int64(n)))
	stream := make([]agg.Change, updates)
	for i := range stream {
		hub := hubs[r.Intn(len(hubs))]
		stream[i] = agg.SetWeight("u", []int{hub.v}, int64(r.Intn(9)+1))
	}
	points := make([]int, 256)
	for i := range points {
		points[i] = r.Intn(n)
	}
	return db, s, stream, points
}

// e18Phase runs one measurement phase: `readers` paced goroutines each issue
// `reads` point queries against the session (the pace models request arrival
// at a serving frontend — the phase measures latency tails, not CPU
// saturation), while an optional writer loops the hot-key stream until the
// readers finish, yielding between updates the way a request-driven writer
// would between requests.  Returns the pooled reader p99 and the writer's
// sustained update rate (zero when no writer ran).
func e18Phase(s *agg.Session, points []int, readers, reads int, pace time.Duration, stream []agg.Change) (p99 time.Duration, writerRate float64) {
	ctx := context.Background()
	lat := make([][]time.Duration, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			mine := make([]time.Duration, 0, reads)
			for i := 0; i < reads; i++ {
				x := points[(r*reads+i)%len(points)]
				t0 := time.Now()
				if _, err := s.Eval(ctx, x); err != nil {
					panic(fmt.Sprintf("E18: read under writes failed: %v", err))
				}
				mine = append(mine, time.Since(t0))
				if pace > 0 {
					time.Sleep(pace)
				}
			}
			lat[r] = mine
		}(r)
	}

	stop := make(chan struct{})
	var writerWg sync.WaitGroup
	applied, writerDur := 0, time.Duration(0)
	if stream != nil {
		writerWg.Add(1)
		go func() {
			defer writerWg.Done()
			t0 := time.Now()
			for {
				for _, ch := range stream {
					select {
					case <-stop:
						writerDur = time.Since(t0)
						return
					default:
					}
					if err := s.Set(ch); err != nil {
						panic(fmt.Sprintf("E18: write under reads failed: %v", err))
					}
					applied++
					runtime.Gosched()
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	writerWg.Wait()
	if applied > 0 {
		writerRate = float64(applied) / writerDur.Seconds()
	}

	var all []time.Duration
	for _, l := range lat {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	idx := len(all) * 99 / 100
	if idx >= len(all) {
		idx = len(all) - 1
	}
	return all[idx], writerRate
}

// e18PlainRate times the identical update stream through the engine below
// the facade — dynamicq on the same query and workload, no session, no
// snapshot machinery — as the baseline the MVCC write path is held against.
func e18PlainRate(db *workload.Database, stream []agg.Change, reps int) float64 {
	q, err := dynamicq.CompileQuery[int64](semiring.Nat, db.A, db.Weights(), e18PathQuery(), compile.Options{})
	if err != nil {
		panic(fmt.Sprintf("E18: plain compile: %v", err))
	}
	var best time.Duration
	for i := 0; i < reps; i++ {
		d := timeIt(func() {
			for _, ch := range stream {
				if err := q.SetWeight(ch.Weight, structure.Tuple(ch.Tuple), ch.Value); err != nil {
					panic(fmt.Sprintf("E18: plain update: %v", err))
				}
			}
		})
		if i == 0 || d < best {
			best = d
		}
	}
	return float64(len(stream)) / best.Seconds()
}

// e18Measure runs the full comparison at one size.
func e18Measure(n, updates, reads int, pace time.Duration) e18Measurements {
	db, s, stream, points := e18Setup(n, updates)
	const reps = 3

	plainRate := e18PlainRate(db, stream, reps)

	// Writer solo through the session: the MVCC path with no reader pinned,
	// which must stay within a few percent of the plain engine (undo logging
	// is off whenever no snapshot is open).
	var solo time.Duration
	for i := 0; i < reps; i++ {
		d := timeIt(func() {
			for _, ch := range stream {
				if err := s.Set(ch); err != nil {
					panic(fmt.Sprintf("E18: solo update: %v", err))
				}
			}
		})
		if i == 0 || d < solo {
			solo = d
		}
	}

	// Idle baseline: the same paced readers with no writer, so the loaded
	// phases are compared under identical scheduling conditions.
	idleP99, _ := e18Phase(s, points, 8, reads, pace, nil)
	p99r1, rate1 := e18Phase(s, points, 1, reads, pace, stream)
	p99r8, rate8 := e18Phase(s, points, 8, reads, pace, stream)

	return e18Measurements{
		n: n, updates: updates, reads: reads, readers: 8,
		plainRate: plainRate,
		soloRate:  float64(updates) / solo.Seconds(),
		rate1:     rate1, rate8: rate8,
		idleP99: idleP99, p99r1: p99r1, p99r8: p99r8,
	}
}

// E18SnapshotReads measures the MVCC session path end to end: point reads
// answer from epoch snapshots, so a sustained hot-key write stream neither
// blocks them nor fails them busy, and the write path itself — which logs
// undo entries only while a snapshot is pinned — keeps the throughput of the
// plain engine.
func E18SnapshotReads(sizes []int, updates int) *Table {
	t := &Table{
		ID:    "E18",
		Title: "Snapshot reads under a sustained write stream (MVCC sessions)",
		Claim: "point reads answer from epoch snapshots with tail latency near the idle baseline and zero busy failures, while the MVCC write path keeps ≥90% of the plain engine's throughput",
		Header: []string{
			"n", "upd/s plain", "upd/s mvcc", "Δwrite",
			"upd/s +8r", "p99 idle", "p99 +w(1r)", "p99 +w(8r)",
		},
	}
	for _, n := range sizes {
		m := e18Measure(n, updates, 300, 2*time.Millisecond)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(m.n),
			fmt.Sprintf("%.0f", m.plainRate),
			fmt.Sprintf("%.0f", m.soloRate),
			fmt.Sprintf("%+.1f%%", 100*(m.soloRate-m.plainRate)/m.plainRate),
			fmt.Sprintf("%.0f", m.rate8),
			dur(m.idleP99), dur(m.p99r1), dur(m.p99r8),
		})
	}
	t.Notes = append(t.Notes,
		"readers issue paced point queries (request-arrival model); every read during the write stream must succeed — a single ErrSessionBusy fails the experiment",
		"upd/s plain is the E13 per-update regime on the engine below the facade; upd/s mvcc is the same stream through an agg session, whose undo logging is off whenever no snapshot is pinned",
		"the concurrent writer yields between updates as a request-driven frontend would; upd/s +8r shows its sustained rate while 8 readers pin and release snapshots")
	return t
}

// E18Check runs the comparison as a pass/fail smoke check (used by CI): the
// MVCC write path must keep ≥90% of the plain engine's solo throughput, and
// the readers' p99 under the sustained write stream must stay near the idle
// baseline — 1.25× plus a scheduling allowance, since on a small shared
// runner a reader wake-up can land behind an in-flight update wave.  Every
// read during the write stream must succeed (the measurement panics on any
// ErrSessionBusy).  Timing attempts are re-measured up to two more times so
// co-tenant noise cannot red-light an unrelated change.
func E18Check() error {
	const (
		writerKeep = 0.90
		p99Margin  = 1.25
		p99Slack   = time.Millisecond
	)
	var m e18Measurements
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		m = e18Measure(2000, 4000, 300, 2*time.Millisecond)
		err = nil
		limit := time.Duration(p99Margin*float64(m.idleP99)) + p99Slack
		switch {
		case m.soloRate < writerKeep*m.plainRate:
			err = fmt.Errorf("E18: MVCC write path %.0f upd/s is below %.0f%% of the plain engine's %.0f upd/s",
				m.soloRate, 100*writerKeep, m.plainRate)
		case m.p99r8 > limit:
			err = fmt.Errorf("E18: reader p99 %v under the write stream exceeds the idle baseline %v beyond %.2fx + %v",
				m.p99r8, m.idleP99, p99Margin, p99Slack)
		}
		if err == nil {
			break
		}
	}
	if err != nil {
		return err
	}
	fmt.Printf("E18 ok: n=%d, write %.0f upd/s plain vs %.0f mvcc (%+.1f%%), %.0f upd/s under 8 readers, p99 %v idle vs %v loaded(8r)\n",
		m.n, m.plainRate, m.soloRate, 100*(m.soloRate-m.plainRate)/m.plainRate, m.rate8, m.idleP99, m.p99r8)
	return nil
}
