// Package nested implements nested weighted queries: the logic FOG[C] of
// Section 7 of the paper, in which formulas may aggregate in several
// semirings and move between them through guarded connectives.
//
// The evaluation follows the proof of Theorem 26: guarded connectives are
// processed innermost-first; the arguments of a connective are evaluated at
// every tuple of its guard relation using the weighted-query machinery of
// Theorem 8 (package dynamicq), the connective is applied pointwise, and the
// result is materialised as a derived relation (boolean output) or derived
// weight (semiring output) of an extended database.  Once no connectives
// remain, the formula is an ordinary weighted expression in a single
// semiring and is evaluated by the compiler; boolean-valued formulas
// additionally support constant-delay answer enumeration (package
// enumerate), which is result (E) of the paper.
//
// Every stage — S-valued connective arguments, boolean residues, and the
// final flat expression alike — is compiled once to a shared frozen
// circuit.Program and read per guard tuple through dynamicq's frozen
// sessions; nothing in this package walks a legacy builder circuit at
// execution time.  ReferenceEvalAt keeps the direct recursive semantics as a
// differential-testing oracle.
package nested

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/dynamicq"
	"repro/internal/expr"
	"repro/internal/semiring"
	"repro/internal/structure"
)

// Semiring is a dynamically typed view of a semiring, used because a nested
// query mixes several carrier types in one syntax tree.
type Semiring interface {
	Name() string
	Zero() any
	One() any
	Add(a, b any) any
	Mul(a, b any) any
	Equal(a, b any) bool
	Format(a any) string
	// Less reports a < b when the carrier is ordered; ok is false otherwise.
	Less(a, b any) (less, ok bool)

	// evalAtTuples evaluates the weighted expression e (with free variables
	// vars) over the structure a under the given weights, at each of the
	// given tuples, using the Theorem 8 evaluator for this semiring.
	evalAtTuples(a *structure.Structure, weights []WeightValue, e expr.Expr, vars []string, tuples []structure.Tuple, opts compile.Options) ([]any, error)
}

// WeightValue is one dynamically typed weight entry.
type WeightValue struct {
	Weight string
	Tuple  structure.Tuple
	Value  any
}

// box adapts a typed semiring to the dynamic interface.
type box[T any] struct {
	name string
	s    semiring.Semiring[T]
}

// Box wraps a typed semiring for use in nested queries.
func Box[T any](name string, s semiring.Semiring[T]) Semiring {
	return box[T]{name: name, s: s}
}

// Builtin boxed semirings used by the examples and tests.
var (
	BoolSemiring = Box[bool]("B", semiring.Bool)
	NatSemiring  = Box[int64]("N", semiring.Nat)
	IntSemiring  = Box[int64]("Z", semiring.Int)
	RatSemiring  = Box("Q", semiring.Rat)
	MaxPlus      = Box[semiring.Ext]("MaxPlus", semiring.MaxPlus)
	MinPlus      = Box[semiring.Ext]("MinPlus", semiring.MinPlus)
)

func (b box[T]) Name() string { return b.name }
func (b box[T]) Zero() any    { return b.s.Zero() }
func (b box[T]) One() any     { return b.s.One() }
func (b box[T]) Add(x, y any) any {
	return b.s.Add(x.(T), y.(T))
}
func (b box[T]) Mul(x, y any) any {
	return b.s.Mul(x.(T), y.(T))
}
func (b box[T]) Equal(x, y any) bool {
	return b.s.Equal(x.(T), y.(T))
}
func (b box[T]) Format(x any) string { return b.s.Format(x.(T)) }
func (b box[T]) Less(x, y any) (bool, bool) {
	ord, ok := b.s.(semiring.Ordered[T])
	if !ok {
		return false, false
	}
	return ord.Less(x.(T), y.(T)), true
}

func (b box[T]) evalAtTuples(a *structure.Structure, weights []WeightValue, e expr.Expr, vars []string, tuples []structure.Tuple, opts compile.Options) ([]any, error) {
	w := structure.NewWeights[T]()
	for _, wv := range weights {
		tv, ok := wv.Value.(T)
		if !ok {
			return nil, fmt.Errorf("nested: weight %s%v has value %v incompatible with semiring %s", wv.Weight, wv.Tuple, wv.Value, b.name)
		}
		w.Set(wv.Weight, wv.Tuple, tv)
	}
	q, err := dynamicq.CompileQuery[T](b.s, a, w, e, opts)
	if err != nil {
		return nil, err
	}
	queryVars := q.FreeVars()
	out := make([]any, len(tuples))
	for i, t := range tuples {
		args := make([]structure.Element, len(queryVars))
		for j, v := range queryVars {
			found := false
			for vi, name := range vars {
				if name == v {
					args[j] = t[vi]
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("nested: free variable %q of a connective argument is not bound by the guard variables %v", v, vars)
			}
		}
		val, err := q.Value(args...)
		if err != nil {
			return nil, err
		}
		out[i] = val
	}
	return out, nil
}

// Connective is a function between semirings, applied under a guard.
type Connective struct {
	Name  string
	Out   Semiring
	Apply func(args []any) any
}

// GreaterThan returns the boolean connective (a, b) ↦ a > b for an ordered
// semiring.
func GreaterThan(s Semiring) Connective {
	return Connective{
		Name: ">",
		Out:  BoolSemiring,
		Apply: func(args []any) any {
			less, ok := s.Less(args[1], args[0])
			if !ok {
				panic(fmt.Sprintf("nested: semiring %s is not ordered", s.Name()))
			}
			return less
		},
	}
}

// AtLeast returns the boolean connective (a, b) ↦ a ≥ b.
func AtLeast(s Semiring) Connective {
	return Connective{
		Name: "≥",
		Out:  BoolSemiring,
		Apply: func(args []any) any {
			less, ok := s.Less(args[0], args[1])
			if !ok {
				panic(fmt.Sprintf("nested: semiring %s is not ordered", s.Name()))
			}
			return !less
		},
	}
}

// IntoMaxPlus converts a natural number into the max-plus semiring (so that
// maxima over aggregates can be taken), mapping n to the finite element n.
var IntoMaxPlus = Connective{
	Name: "toMaxPlus",
	Out:  MaxPlus,
	Apply: func(args []any) any {
		return semiring.Fin(args[0].(int64))
	},
}

// RatioNat is the connective ℕ×ℕ → ℕ computing the integer ratio ⌊a/b⌋
// (0 when b = 0); it stands in for the rational division connective of the
// paper's example while keeping integer carriers.
var RatioNat = Connective{
	Name: "ratio",
	Out:  NatSemiring,
	Apply: func(args []any) any {
		a, b := args[0].(int64), args[1].(int64)
		if b == 0 {
			return int64(0)
		}
		return a / b
	},
}

// ---------------------------------------------------------------------------
// Formulas
// ---------------------------------------------------------------------------

// Formula is a nested weighted query formula.  Each formula has an output
// semiring.
type Formula interface {
	Out() Semiring
	String() string
}

// BRel is an atom of a boolean relation of the base structure.
type BRel struct {
	Rel  string
	Args []string
}

// SRel is an atom of a semiring-valued relation (stored as weights of the
// database).
type SRel struct {
	Rel  string
	Args []string
	S    Semiring
}

// ConstF is a semiring constant.
type ConstF struct {
	S     Semiring
	Value any
}

// Not negates a boolean formula.
type Not struct{ Arg Formula }

// BinOp is addition or multiplication within one semiring (∨/∧ when the
// semiring is boolean).
type BinOp struct {
	Mul  bool
	L, R Formula
}

// SumAgg is semiring aggregation Σ_x (existential quantification when the
// semiring is boolean).
type SumAgg struct {
	Vars []string
	Arg  Formula
}

// Iverson converts a boolean formula into 0/1 of another semiring.
type Iverson struct {
	S   Semiring
	Arg Formula
}

// Guarded is a guarded connective [R(x̄)]·c(ϕ1, ..., ϕk): the connective is
// applied only on tuples of the boolean guard relation R, which must contain
// every free variable of the arguments (the FOG[C] restriction).
type Guarded struct {
	GuardRel  string
	GuardArgs []string
	Conn      Connective
	Args      []Formula
}

func (f BRel) Out() Semiring    { return BoolSemiring }
func (f SRel) Out() Semiring    { return f.S }
func (f ConstF) Out() Semiring  { return f.S }
func (f Not) Out() Semiring     { return BoolSemiring }
func (f BinOp) Out() Semiring   { return f.L.Out() }
func (f SumAgg) Out() Semiring  { return f.Arg.Out() }
func (f Iverson) Out() Semiring { return f.S }
func (f Guarded) Out() Semiring { return f.Conn.Out }

func (f BRel) String() string { return fmt.Sprintf("%s(%v)", f.Rel, f.Args) }
func (f SRel) String() string { return fmt.Sprintf("%s(%v)", f.Rel, f.Args) }
func (f ConstF) String() string {
	return f.S.Format(f.Value)
}
func (f Not) String() string { return "¬(" + f.Arg.String() + ")" }
func (f BinOp) String() string {
	op := "+"
	if f.Mul {
		op = "·"
	}
	return "(" + f.L.String() + " " + op + " " + f.R.String() + ")"
}
func (f SumAgg) String() string  { return fmt.Sprintf("Σ_%v (%s)", f.Vars, f.Arg) }
func (f Iverson) String() string { return "[" + f.Arg.String() + "]_" + f.S.Name() }
func (f Guarded) String() string {
	return fmt.Sprintf("[%s(%v)]·%s(...)", f.GuardRel, f.GuardArgs, f.Conn.Name)
}

// Convenience constructors.

// B builds a boolean relation atom.
func B(rel string, args ...string) Formula { return BRel{Rel: rel, Args: args} }

// S builds a semiring-valued relation atom.
func S(s Semiring, rel string, args ...string) Formula { return SRel{Rel: rel, Args: args, S: s} }

// Val builds a semiring constant.
func Val(s Semiring, v any) Formula { return ConstF{S: s, Value: v} }

// Neg negates a boolean formula.
func Neg(f Formula) Formula { return Not{Arg: f} }

// Plus adds two formulas of the same semiring.
func Plus(l, r Formula) Formula { return BinOp{L: l, R: r} }

// Times multiplies two formulas of the same semiring.
func Times(l, r Formula) Formula { return BinOp{Mul: true, L: l, R: r} }

// Sum aggregates over variables.
func Sum(vars []string, f Formula) Formula { return SumAgg{Vars: vars, Arg: f} }

// Exists is boolean existential quantification (sugar for Sum over B).
func Exists(vars []string, f Formula) Formula { return SumAgg{Vars: vars, Arg: f} }

// Bracket converts a boolean formula to 0/1 of semiring s.
func Bracket(s Semiring, f Formula) Formula { return Iverson{S: s, Arg: f} }

// Guard applies a connective under a guard relation.
func Guard(guardRel string, guardArgs []string, conn Connective, args ...Formula) Formula {
	return Guarded{GuardRel: guardRel, GuardArgs: guardArgs, Conn: conn, Args: args}
}
