package expr

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/semiring"
	"repro/internal/structure"
)

// weightedDigraph builds a directed graph structure with edge relation E,
// unary predicate U on a random subset, a binary weight w on edges and a
// unary weight u on all elements.
func weightedDigraph(n, m int, seed int64) (*structure.Structure, *structure.Weights[int64]) {
	sig := structure.MustSignature(
		[]structure.RelSymbol{{Name: "E", Arity: 2}, {Name: "U", Arity: 1}},
		[]structure.WeightSymbol{{Name: "w", Arity: 2}, {Name: "u", Arity: 1}},
	)
	r := rand.New(rand.NewSource(seed))
	a := structure.NewStructure(sig, n)
	w := structure.NewWeights[int64]()
	for a.TupleCount() < m {
		x, y := r.Intn(n), r.Intn(n)
		if x == y {
			continue
		}
		a.MustAddTuple("E", x, y)
		w.Set("w", structure.Tuple{x, y}, int64(r.Intn(5)+1))
	}
	for v := 0; v < n; v++ {
		if r.Intn(2) == 0 {
			a.MustAddTuple("U", v)
		}
		w.Set("u", structure.Tuple{v}, int64(r.Intn(4)))
	}
	return a, w
}

func TestEvalBasics(t *testing.T) {
	a, w := weightedDigraph(6, 8, 1)
	env := map[string]structure.Element{}

	// Constant.
	if got := Eval[int64](semiring.Nat, a, w, N(7), env); got != 7 {
		t.Errorf("Eval(7) = %d", got)
	}
	// Number of edges: Σ_{x,y} [E(x,y)].
	edges := Agg([]string{"x", "y"}, Guard(logic.R("E", "x", "y")))
	if got := Eval[int64](semiring.Nat, a, w, edges, env); got != int64(len(a.Tuples("E"))) {
		t.Errorf("edge count = %d, want %d", got, len(a.Tuples("E")))
	}
	// Total edge weight: Σ_{x,y} [E(x,y)]·w(x,y).
	totalWeight := Agg([]string{"x", "y"}, Times(Guard(logic.R("E", "x", "y")), W("w", "x", "y")))
	var want int64
	for _, tup := range a.Tuples("E") {
		v, _ := w.Get("w", tup)
		want += v
	}
	if got := Eval[int64](semiring.Nat, a, w, totalWeight, env); got != want {
		t.Errorf("total edge weight = %d, want %d", got, want)
	}
	// Free variable: out-degree of a node.
	outdeg := Agg([]string{"y"}, Guard(logic.R("E", "x", "y")))
	env["x"] = 0
	var deg int64
	for _, tup := range a.Tuples("E") {
		if tup[0] == 0 {
			deg++
		}
	}
	if got := Eval[int64](semiring.Nat, a, w, outdeg, env); got != deg {
		t.Errorf("out-degree of 0 = %d, want %d", got, deg)
	}
	delete(env, "x")
	// Empty sum and product.
	if got := Eval[int64](semiring.Nat, a, w, Plus(), env); got != 0 {
		t.Errorf("empty sum = %d", got)
	}
	if got := Eval[int64](semiring.Nat, a, w, Times(), env); got != 1 {
		t.Errorf("empty product = %d", got)
	}
}

func TestFreeVarsExpr(t *testing.T) {
	e := Agg([]string{"y"}, Times(Guard(logic.R("E", "x", "y")), W("w", "x", "y"), W("u", "z")))
	got := FreeVars(e)
	want := []string{"x", "z"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("FreeVars = %v, want %v", got, want)
	}
}

func TestValidate(t *testing.T) {
	sig := structure.MustSignature(
		[]structure.RelSymbol{{Name: "E", Arity: 2}},
		[]structure.WeightSymbol{{Name: "w", Arity: 2}},
	)
	good := Agg([]string{"x", "y"}, Times(Guard(logic.R("E", "x", "y")), W("w", "x", "y")))
	if err := Validate(good, sig); err != nil {
		t.Errorf("Validate(good) = %v", err)
	}
	bad := []Expr{
		W("missing", "x"),
		W("w", "x"),
		Guard(logic.R("F", "x", "y")),
		Guard(logic.R("E", "x")),
		N(-2),
	}
	for _, e := range bad {
		if err := Validate(e, sig); err == nil {
			t.Errorf("Validate(%s) should fail", e)
		}
	}
}

func TestNormalizeRejectsQuantifiers(t *testing.T) {
	e := Guard(logic.Ex([]string{"y"}, logic.R("E", "x", "y")))
	if _, err := Normalize(e, NormalizeOptions{}); err == nil {
		t.Errorf("Normalize should reject quantified brackets")
	}
}

func TestNormalizeTriangle(t *testing.T) {
	// The triangle query has a single all-positive monomial.
	tri := Agg([]string{"x", "y", "z"}, Times(
		Guard(logic.Conj(logic.R("E", "x", "y"), logic.R("E", "y", "z"), logic.R("E", "z", "x"))),
		W("w", "x", "y"), W("w", "y", "z"), W("w", "z", "x"),
	))
	p, err := Normalize(tri, NormalizeOptions{})
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if len(p.Monomials) != 1 {
		t.Fatalf("triangle query normalised to %d monomials, want 1:\n%s", len(p.Monomials), p)
	}
	m := p.Monomials[0]
	if len(m.Bound) != 3 || len(m.Literals) != 3 || len(m.Weights) != 3 || m.Coeff != 1 {
		t.Errorf("unexpected monomial: %s", m)
	}
	if p.MaxBoundVars() != 3 {
		t.Errorf("MaxBoundVars = %d, want 3", p.MaxBoundVars())
	}
	if len(p.FreeVars()) != 0 {
		t.Errorf("closed query has free vars %v", p.FreeVars())
	}
}

func TestNormalizeDisjunctionExclusive(t *testing.T) {
	// [E(x,y) ∨ E(y,x)] must expand into mutually exclusive monomials so
	// that the sum over the monomials equals the bracket in every semiring.
	e := Agg([]string{"x", "y"}, Guard(logic.Disj(logic.R("E", "x", "y"), logic.R("E", "y", "x"))))
	p, err := Normalize(e, NormalizeOptions{})
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if len(p.Monomials) != 3 {
		t.Errorf("disjunction expanded to %d monomials, want 3", len(p.Monomials))
	}
	a, w := weightedDigraph(7, 12, 3)
	env := map[string]structure.Element{}
	want := Eval[int64](semiring.Nat, a, w, e, env)
	got := EvalPolynomial[int64](semiring.Nat, a, w, p, env)
	if got != want {
		t.Errorf("polynomial value %d, want %d", got, want)
	}
}

func TestNormalizeNestedSums(t *testing.T) {
	// Σ_x (u(x) · Σ_y [E(x,y)]·u(y)) flattens into a single prenex block.
	e := Agg([]string{"x"}, Times(W("u", "x"), Agg([]string{"y"}, Times(Guard(logic.R("E", "x", "y")), W("u", "y")))))
	p, err := Normalize(e, NormalizeOptions{})
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if len(p.Monomials) != 1 {
		t.Fatalf("got %d monomials, want 1", len(p.Monomials))
	}
	if len(p.Monomials[0].Bound) != 2 {
		t.Errorf("expected 2 bound variables, got %v", p.Monomials[0].Bound)
	}
	a, w := weightedDigraph(6, 10, 5)
	env := map[string]structure.Element{}
	if got, want := EvalPolynomial[int64](semiring.Nat, a, w, p, env), Eval[int64](semiring.Nat, a, w, e, env); got != want {
		t.Errorf("nested sum: polynomial %d, reference %d", got, want)
	}
}

func TestNormalizeVariableShadowing(t *testing.T) {
	// Two independent aggregations over the same variable name must not be
	// conflated: Σ_x u(x) · Σ_x u(x) = (Σ_x u(x))².
	e := Times(Agg([]string{"x"}, W("u", "x")), Agg([]string{"x"}, W("u", "x")))
	p, err := Normalize(e, NormalizeOptions{})
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	a, w := weightedDigraph(5, 6, 7)
	env := map[string]structure.Element{}
	want := Eval[int64](semiring.Nat, a, w, e, env)
	got := EvalPolynomial[int64](semiring.Nat, a, w, p, env)
	if got != want {
		t.Errorf("shadowed bound variables: polynomial %d, reference %d", got, want)
	}
	if len(p.Monomials) != 1 || len(p.Monomials[0].Bound) != 2 {
		t.Errorf("expected one monomial with two distinct bound variables, got %s", p)
	}
}

func TestNormalizeContradictionsDropped(t *testing.T) {
	e := Agg([]string{"x", "y"}, Times(Guard(logic.R("E", "x", "y")), Guard(logic.Neg(logic.R("E", "x", "y")))))
	p, err := Normalize(e, NormalizeOptions{})
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if len(p.Monomials) != 0 {
		t.Errorf("contradictory product should normalise to 0, got %s", p)
	}
	// x ≠ x is always false.
	e2 := Agg([]string{"x"}, Guard(logic.Neg(logic.Equal("x", "x"))))
	p2, err := Normalize(e2, NormalizeOptions{})
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if len(p2.Monomials) != 0 {
		t.Errorf("x≠x should normalise to 0, got %s", p2)
	}
	// Zero constants vanish.
	p3, err := Normalize(Times(N(0), W("u", "x")), NormalizeOptions{})
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if len(p3.Monomials) != 0 {
		t.Errorf("0·u(x) should normalise to 0")
	}
}

// randomExpr builds a random weighted expression over the signature used by
// weightedDigraph, with bounded aggregation depth.
func randomExpr(r *rand.Rand, vars []string, depth int) Expr {
	if depth == 0 || r.Intn(4) == 0 {
		switch r.Intn(4) {
		case 0:
			return N(int64(r.Intn(3)))
		case 1:
			if len(vars) == 0 {
				return N(1)
			}
			return W("u", vars[r.Intn(len(vars))])
		case 2:
			if len(vars) < 1 {
				return N(1)
			}
			x := vars[r.Intn(len(vars))]
			y := vars[r.Intn(len(vars))]
			return Times(Guard(logic.R("E", x, y)), W("w", x, y))
		default:
			if len(vars) == 0 {
				return N(1)
			}
			x := vars[r.Intn(len(vars))]
			y := vars[r.Intn(len(vars))]
			var f logic.Formula
			switch r.Intn(4) {
			case 0:
				f = logic.R("E", x, y)
			case 1:
				f = logic.Neg(logic.R("E", x, y))
			case 2:
				f = logic.Conj(logic.R("U", x), logic.Neg(logic.Equal(x, y)))
			default:
				f = logic.Disj(logic.R("U", x), logic.R("E", x, y))
			}
			return Guard(f)
		}
	}
	switch r.Intn(3) {
	case 0:
		return Plus(randomExpr(r, vars, depth-1), randomExpr(r, vars, depth-1))
	case 1:
		return Times(randomExpr(r, vars, depth-1), randomExpr(r, vars, depth-1))
	default:
		v := []string{"x", "y", "z", "t"}[r.Intn(4)]
		inner := append(append([]string(nil), vars...), v)
		return Agg([]string{v}, randomExpr(r, inner, depth-1))
	}
}

// TestNormalizePreservesSemantics is the central property test of this
// package: for random expressions, random structures and several semirings,
// the normalised polynomial evaluates to the same value as the original
// expression.
func TestNormalizePreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 60; trial++ {
		e := Agg([]string{"x"}, randomExpr(r, []string{"x"}, 3))
		p, err := Normalize(e, NormalizeOptions{})
		if err != nil {
			t.Fatalf("Normalize(%s): %v", e, err)
		}
		a, w := weightedDigraph(5, 7, int64(trial))
		env := map[string]structure.Element{}

		if got, want := EvalPolynomial[int64](semiring.Nat, a, w, p, env), Eval[int64](semiring.Nat, a, w, e, env); got != want {
			t.Fatalf("trial %d (Nat): polynomial %d, reference %d\nexpr: %s\npoly: %s", trial, got, want, e, p)
		}

		// Min-plus weights: reuse the integer weights as costs.
		wmp := structure.NewWeights[semiring.Ext]()
		w.ForEach(func(k structure.WeightKey, v int64) {
			wmp.Set(k.Weight, structure.ParseTupleKey(k.Tuple), semiring.Fin(v))
		})
		gotMP := EvalPolynomial[semiring.Ext](semiring.MinPlus, a, wmp, p, env)
		wantMP := Eval[semiring.Ext](semiring.MinPlus, a, wmp, e, env)
		if !semiring.MinPlus.Equal(gotMP, wantMP) {
			t.Fatalf("trial %d (MinPlus): polynomial %v, reference %v\nexpr: %s", trial, gotMP, wantMP, e)
		}

		// Boolean semiring.
		wb := structure.NewWeights[bool]()
		w.ForEach(func(k structure.WeightKey, v int64) {
			wb.Set(k.Weight, structure.ParseTupleKey(k.Tuple), v != 0)
		})
		gotB := EvalPolynomial[bool](semiring.Bool, a, wb, p, env)
		wantB := Eval[bool](semiring.Bool, a, wb, e, env)
		if gotB != wantB {
			t.Fatalf("trial %d (Bool): polynomial %v, reference %v\nexpr: %s", trial, gotB, wantB, e)
		}
	}
}

func TestMonomialAccessors(t *testing.T) {
	m := &Monomial{
		Coeff:    2,
		Bound:    []string{"x"},
		Literals: []Literal{{Positive: true, Rel: "E", Args: []string{"x", "y"}}},
		Weights:  []WeightTerm{{W: "u", Args: []string{"x"}}},
	}
	vars := m.Vars()
	if len(vars) != 2 || vars[0] != "x" || vars[1] != "y" {
		t.Errorf("Vars = %v", vars)
	}
	free := m.FreeVars()
	if len(free) != 1 || free[0] != "y" {
		t.Errorf("FreeVars = %v", free)
	}
	if m.String() == "" {
		t.Errorf("empty monomial rendering")
	}
	l := Literal{Positive: false, Args: []string{"x", "y"}}
	if !l.IsEquality() || l.String() != "x≠y" {
		t.Errorf("equality literal rendering: %q", l.String())
	}
}

func TestBracketAtomLimit(t *testing.T) {
	// A bracket with more atoms than the limit is rejected.
	var atoms []logic.Formula
	for i := 0; i < 5; i++ {
		atoms = append(atoms, logic.R("U", string(rune('a'+i))))
	}
	e := Guard(logic.Conj(atoms...))
	if _, err := Normalize(e, NormalizeOptions{MaxBracketAtoms: 3}); err == nil {
		t.Errorf("bracket exceeding atom limit should be rejected")
	}
	if _, err := Normalize(e, NormalizeOptions{MaxBracketAtoms: 8}); err != nil {
		t.Errorf("bracket within atom limit rejected: %v", err)
	}
}
